//! Engine-level corruption injection: deterministic switches that make
//! the *arithmetic* integrity layer ([`crate::verify`]) testable, the
//! way [`mmm-rsa`'s serving fault plan] makes the serving layer's
//! failure modes testable.
//!
//! A verification layer that has never seen a corrupted value is
//! decoration. Every [`EngineConfig`](crate::config::EngineConfig)
//! carries one [`CorruptionPlan`] (a fresh, inert plan per config;
//! reachable via `config.faults()`); tests arm it to produce the three
//! silent-data-corruption shapes the integrity layer must catch:
//!
//! * **A flipped digit in one lane of a batch multiplication**
//!   ([`CorruptionPlan::inject_mont_mul_flip`]) — the next `n` batch
//!   multiplications flip one bit of one lane's output *after* the
//!   engine computes it, modeling a faulted SIMD lane or a cosmic-ray
//!   bit flip in the result path. Caught by the mod-`m` residue check
//!   ([`crate::verify::ResidueCheck`]) when a
//!   [`VerifyPolicy`](crate::verify::VerifyPolicy) is active.
//! * **A faulted CRT half-run**
//!   ([`CorruptionPlan::inject_crt_half_fault`]) — the next `n`
//!   half-exponentiations of `mmm-rsa`'s CRT decryption have one lane
//!   flipped (and re-reduced mod the half prime, so Garner's inputs
//!   stay in range — the flip still changes the residue with
//!   certainty because the prime is odd). This is the Bellcore fault
//!   model: one wrong half leaks the private key if released. Caught
//!   by verify-before-release (`m^e ≡ c (mod N)`).
//! * **A corrupted pooled parameter**
//!   ([`CorruptionPlan::inject_param_corruption`]) — the next `n`
//!   half-runs perturb one lane's input residue, modeling a bit-rot
//!   in a pooled engine's cached constants producing a wrong
//!   reduction. Also caught by verify-before-release.
//!
//! The plan is **inert by default**: the hot path pays one atomic
//! load per hook when nothing is armed. Switches are compiled in
//! unconditionally so integration tests drive them through the public
//! API without a feature flag; arming is scoped to the plan instance
//! (each `EngineConfig::default()` gets its own), so parallel tests
//! never interfere.
//!
//! [`mmm-rsa`'s serving fault plan]: ../../../mmm_rsa/serve/faults/index.html

use mmm_bigint::Ubig;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Per-config engine-corruption switches. See the module docs; all
/// methods are thread-safe and may be called mid-serving.
#[derive(Debug, Default)]
pub struct CorruptionPlan {
    /// Remaining batch multiplications that must corrupt a lane.
    mont_flips: AtomicUsize,
    /// Lane index for the next mont-mul flip (mod the batch width).
    mont_lane: AtomicUsize,
    /// Bit index for the next mont-mul flip.
    mont_bit: AtomicUsize,
    /// Remaining CRT half-runs that must corrupt a lane.
    half_faults: AtomicUsize,
    /// Lane index for the next half fault (mod the shard width).
    half_lane: AtomicUsize,
    /// Bit index for the next half fault.
    half_bit: AtomicUsize,
    /// Remaining half-runs that must perturb an input residue.
    param_faults: AtomicUsize,
    /// Lane index for the next param perturbation (mod shard width).
    param_lane: AtomicUsize,
    /// Observability: injections that actually fired (monotone
    /// tallies — relaxed ordering by the workspace convention).
    mont_flips_fired: AtomicU64,
    half_faults_fired: AtomicU64,
    param_faults_fired: AtomicU64,
}

/// Decrements `counter` if it is positive; true when this caller won
/// one of the armed slots (same pattern as the serving fault plan).
fn take_one(counter: &AtomicUsize) -> bool {
    counter
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
        .is_ok()
}

/// Flips bit `bit` of `v` in place.
fn flip_bit_of(v: &mut Ubig, bit: usize) {
    let cur = v.bit(bit);
    v.set_bit(bit, !cur);
}

/// The shared never-armed plan used by
/// [`VerifyContext::inert`](crate::verify::VerifyContext::inert) and
/// by internal verification passes that must not consume a caller's
/// armed injections. **Never arm this plan** — it is shared
/// process-wide precisely because it stays inert.
pub fn inert_plan() -> Arc<CorruptionPlan> {
    static INERT: OnceLock<Arc<CorruptionPlan>> = OnceLock::new();
    Arc::clone(INERT.get_or_init(|| Arc::new(CorruptionPlan::default())))
}

impl CorruptionPlan {
    /// Arms the next `n` batch multiplications (through any
    /// [`VerifiedEngine`](crate::verify::VerifiedEngine) carrying this
    /// plan) to flip bit `bit` of lane `lane % width`'s output.
    pub fn inject_mont_mul_flip(&self, lane: usize, bit: usize, n: usize) {
        self.mont_lane.store(lane, Ordering::Release);
        self.mont_bit.store(bit, Ordering::Release);
        self.mont_flips.fetch_add(n, Ordering::AcqRel);
    }

    /// Arms the next `n` CRT half-runs to flip bit `bit` of lane
    /// `lane % width`'s half-result (re-reduced mod the half prime so
    /// downstream Garner arithmetic stays in range; the residue still
    /// changes with certainty since the prime is odd).
    pub fn inject_crt_half_fault(&self, lane: usize, bit: usize, n: usize) {
        self.half_lane.store(lane, Ordering::Release);
        self.half_bit.store(bit, Ordering::Release);
        self.half_faults.fetch_add(n, Ordering::AcqRel);
    }

    /// Arms the next `n` CRT half-runs to perturb lane
    /// `lane % width`'s *input* residue — the corrupted-pooled-param
    /// model (a wrong cached constant yields a wrong reduction).
    pub fn inject_param_corruption(&self, lane: usize, n: usize) {
        self.param_lane.store(lane, Ordering::Release);
        self.param_faults.fetch_add(n, Ordering::AcqRel);
    }

    /// Disarms every pending injection (fired counters are kept).
    pub fn reset(&self) {
        self.mont_flips.store(0, Ordering::Release);
        self.half_faults.store(0, Ordering::Release);
        self.param_faults.store(0, Ordering::Release);
    }

    /// Mont-mul lane flips that actually fired.
    pub fn mont_flips_fired(&self) -> u64 {
        self.mont_flips_fired.load(Ordering::Relaxed)
    }

    /// CRT half faults that actually fired.
    pub fn half_faults_fired(&self) -> u64 {
        self.half_faults_fired.load(Ordering::Relaxed)
    }

    /// Param perturbations that actually fired.
    pub fn param_faults_fired(&self) -> u64 {
        self.param_faults_fired.load(Ordering::Relaxed)
    }

    /// Engine-side hook, called on every batch-multiplication output
    /// by [`VerifiedEngine`](crate::verify::VerifiedEngine). Applies
    /// an armed lane flip; true when a corruption fired.
    pub fn corrupt_mont_batch(&self, outs: &mut [Ubig]) -> bool {
        if outs.is_empty() || !take_one(&self.mont_flips) {
            return false;
        }
        let lane = self.mont_lane.load(Ordering::Acquire) % outs.len();
        flip_bit_of(&mut outs[lane], self.mont_bit.load(Ordering::Acquire));
        self.mont_flips_fired.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// CRT-side hook, called by `mmm-rsa` on every half-run result
    /// slice with the half modulus. Applies an armed half fault; true
    /// when a corruption fired.
    pub fn corrupt_crt_half(&self, outs: &mut [Ubig], modulus: &Ubig) -> bool {
        if outs.is_empty() || !take_one(&self.half_faults) {
            return false;
        }
        let lane = self.half_lane.load(Ordering::Acquire) % outs.len();
        flip_bit_of(&mut outs[lane], self.half_bit.load(Ordering::Acquire));
        outs[lane] = outs[lane].rem(modulus);
        self.half_faults_fired.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// CRT-side hook, called by `mmm-rsa` on every half-run's *input*
    /// residues. Applies an armed param perturbation (adds one mod the
    /// half modulus — always a different residue); true when fired.
    pub fn corrupt_param_residue(&self, residues: &mut [Ubig], modulus: &Ubig) -> bool {
        if residues.is_empty() || !take_one(&self.param_faults) {
            return false;
        }
        let lane = self.param_lane.load(Ordering::Acquire) % residues.len();
        residues[lane] = residues[lane].modadd(&Ubig::one(), modulus);
        self.param_faults_fired.fetch_add(1, Ordering::Relaxed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_by_default() {
        let plan = CorruptionPlan::default();
        let mut outs = vec![Ubig::from(5u64)];
        assert!(!plan.corrupt_mont_batch(&mut outs));
        assert!(!plan.corrupt_crt_half(&mut outs, &Ubig::from(13u64)));
        assert!(!plan.corrupt_param_residue(&mut outs, &Ubig::from(13u64)));
        assert_eq!(outs[0], Ubig::from(5u64));
        assert_eq!(plan.mont_flips_fired(), 0);
        assert_eq!(plan.half_faults_fired(), 0);
        assert_eq!(plan.param_faults_fired(), 0);
    }

    #[test]
    fn armed_flip_fires_exactly_n_times_on_the_chosen_lane() {
        let plan = CorruptionPlan::default();
        plan.inject_mont_mul_flip(1, 2, 2);
        let mut outs = vec![Ubig::from(8u64), Ubig::from(8u64)];
        assert!(plan.corrupt_mont_batch(&mut outs));
        assert_eq!(outs[0], Ubig::from(8u64), "lane 0 untouched");
        assert_eq!(outs[1], Ubig::from(12u64), "bit 2 of lane 1 flipped");
        assert!(plan.corrupt_mont_batch(&mut outs));
        assert!(!plan.corrupt_mont_batch(&mut outs), "disarmed after n");
        assert_eq!(plan.mont_flips_fired(), 2);
    }

    #[test]
    fn half_fault_keeps_the_residue_reduced_but_changed() {
        let plan = CorruptionPlan::default();
        let q = Ubig::from(17u64);
        // Flip a bit above the modulus: the result must re-reduce.
        plan.inject_crt_half_fault(0, 9, 1);
        let mut outs = vec![Ubig::from(16u64)];
        assert!(plan.corrupt_crt_half(&mut outs, &q));
        assert!(outs[0] < q, "stays a valid residue");
        assert_ne!(outs[0], Ubig::from(16u64), "odd modulus: flip detected");
        assert_eq!(plan.half_faults_fired(), 1);
    }

    #[test]
    fn param_corruption_changes_the_residue_and_reset_disarms() {
        let plan = CorruptionPlan::default();
        let p = Ubig::from(13u64);
        plan.inject_param_corruption(0, 3);
        let mut rs = vec![Ubig::from(12u64)];
        assert!(plan.corrupt_param_residue(&mut rs, &p));
        assert_eq!(rs[0], Ubig::zero(), "12 + 1 wraps mod 13");
        plan.reset();
        assert!(!plan.corrupt_param_residue(&mut rs, &p), "reset disarms");
        assert_eq!(plan.param_faults_fired(), 1);
    }

    #[test]
    fn inert_plan_is_shared_and_unarmed() {
        let a = inert_plan();
        let b = inert_plan();
        assert!(Arc::ptr_eq(&a, &b));
        let mut outs = vec![Ubig::one()];
        assert!(!a.corrupt_mont_batch(&mut outs));
    }
}

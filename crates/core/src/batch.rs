//! Bit-sliced batch engine: up to 64 **independent** Montgomery
//! multiplications advancing in lockstep, one cell equation pass per
//! simulated clock cycle.
//!
//! [`crate::wave_packed::PackedMmmc`] packs 64 *cells of one
//! multiplication* into each `u64`; this engine transposes the layout
//! and packs *the same cell of 64 multiplications* instead: `t[j]`,
//! `c0[j]` and `c1[j]` are each a single `u64` whose bit `k` belongs
//! to lane `k`. The lane dimension then rides the machine word for
//! free: the cell recurrences become straight-line word ops over
//! position `j` with **no carry chains between words** — the
//! neighbour wiring (`t_{j+1}`, `c_{j-1}`) is array indexing, not
//! sub-word shifting — and the edge cells are ordinary lane-word
//! expressions, no scalar bit patching.
//!
//! ## The wave band
//!
//! Every dependency of cell `j` at cycle `τ` (digit from `j+1`,
//! carries from `j-1`, all latched one cycle earlier) preserves the
//! **wave coordinate** `σ = τ − j`. The array therefore decomposes
//! into independent diagonal waves, and only waves with `σ` even and
//! `0 ≤ σ/2 ≤ l+1` ever have their T-writes enabled by the valid
//! pipeline — odd-`σ` state is a dead lattice and `σ/2 > l+1` waves
//! are the drain junk the valid bit exists to suppress. The simulator
//! exploits this analytically instead of replaying it:
//!
//! * per cycle it touches only the live band
//!   `j ∈ [max(1, τ−2l−2), min(l, τ)]`, `j ≡ τ (mod 2)` — ~`l²`
//!   position updates per multiplication instead of the packed
//!   model's `3l²`;
//! * the `xp`/`vp` pipelines collapse into closed form (`xp[j]` at
//!   cycle `τ` is operand bit `(τ−j)/2`; the enable is identically 1
//!   inside the band), and the `mp` pipeline becomes `m_even`, a
//!   history of the rightmost cell's `m` outputs indexed by wave;
//! * updates are in place: within a cycle, writes land on live-parity
//!   slots while reads come from opposite-parity slots, so no double
//!   buffering and no pipeline shifting at all.
//!
//! All 64 lanes share the modulus `N` (the multi-user serving shape:
//! one key, many requests) but have independent `x`/`y` operands. The
//! hot loop is allocation-free: every buffer lives in the engine and
//! is reused across batches, in the same spirit as
//! [`crate::wave_packed::PackedWaveArray::step`].
//!
//! Lane-for-lane, results are bit-identical to a solo
//! [`crate::wave_packed::PackedMmmc`] run — asserted by the module
//! tests and by `tests/batch_engine.rs` at the workspace root. For
//! workloads wider than 64 lanes, [`mont_mul_many`] shards across
//! engines with rayon.

use crate::config::{EngineConfig, HardeningMode};
use crate::engine::EngineKind;
use crate::error::{validate_mont_batch, MmmError};
use crate::montgomery::MontgomeryParams;
use crate::pool;
use crate::traits::{BatchMontMul, MontMul};
use mmm_bigint::transpose::{lanes_to_slices_into, slices_to_lanes_into};
use mmm_bigint::Ubig;
use rayon::prelude::*;

/// Lanes one engine advances per simulated cycle (bits in a word).
pub const MAX_LANES: usize = 64;

/// The bit-sliced batch engine. State layout: every vector has `l + 2`
/// positions (the systolic array's digit positions), each a lane word.
#[derive(Debug, Clone)]
pub struct BitSlicedBatch {
    params: MontgomeryParams,
    l: usize,
    /// Modulus broadcast: `n_pos[j]` is all-ones iff bit `j` of `N` is
    /// set (every lane shares `N`).
    n_pos: Vec<u64>,
    /// Transposed operands for the current batch.
    x_pos: Vec<u64>,
    y_pos: Vec<u64>,
    // Array registers, transposed (slot j = cell j, bit k = lane k).
    t: Vec<u64>,
    c0: Vec<u64>,
    c1: Vec<u64>,
    /// `m_even[u]` is the rightmost cell's `m` lane word from cycle
    /// `2u` — the only `m` values the live wave lattice ever consumes.
    m_even: Vec<u64>,
    total_cycles: u64,
    /// Constant-time mode: when hardened, every result is
    /// canonicalized `< N` by [`cond_sub_bitsliced`].
    hardening: HardeningMode,
}

impl BitSlicedBatch {
    /// Creates an engine for `params` (same hardware-safety contract
    /// as the other array engines), rejecting hardware-unsafe
    /// parameters with [`MmmError::HardwareUnsafeWidth`].
    pub fn try_new(params: MontgomeryParams) -> Result<Self, MmmError> {
        if !params.is_hardware_safe() {
            return Err(MmmError::HardwareUnsafeWidth { l: params.l() });
        }
        let l = params.l();
        let w = l + 2;
        let mut n_pos = vec![0u64; w];
        for (j, slot) in n_pos.iter_mut().enumerate().take(l) {
            if params.n().bit(j) {
                *slot = u64::MAX;
            }
        }
        Ok(BitSlicedBatch {
            params,
            l,
            n_pos,
            x_pos: vec![0; w],
            y_pos: vec![0; w],
            t: vec![0; w],
            c0: vec![0; w],
            c1: vec![0; w],
            m_even: vec![0; w],
            total_cycles: 0,
            hardening: HardeningMode::Off,
        })
    }

    /// Creates an engine for `params`.
    ///
    /// # Panics
    /// Panics if the parameters are not hardware-safe;
    /// [`BitSlicedBatch::try_new`] is the fallible variant.
    pub fn new(params: MontgomeryParams) -> Self {
        Self::try_new(params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The engine's parameters.
    pub fn params(&self) -> &MontgomeryParams {
        &self.params
    }

    /// Zeroes the accumulated cycle counter. The engine pool calls
    /// this on checkout so a recycled engine reports only the current
    /// loan's cycles, matching a freshly built engine.
    pub fn reset_cycle_counter(&mut self) {
        self.total_cycles = 0;
    }

    /// Loads a batch of operands and clears the array registers.
    fn load(&mut self, xs: &[Ubig], ys: &[Ubig]) {
        let w = self.l + 2;
        lanes_to_slices_into(xs, w, &mut self.x_pos);
        lanes_to_slices_into(ys, w, &mut self.y_pos);
        self.t.fill(0);
        self.c0.fill(0);
        self.c1.fill(0);
        self.m_even.fill(0);
    }

    /// Runs one batch of up to 64 multiplications, writing the
    /// per-lane results into `out` and returning the cycle count
    /// (`3l + 4`, identical to every other array engine — the batch
    /// dimension is free).
    ///
    /// This is the allocation-free primitive of the engine: the lane
    /// state lives in `self` (reused across calls, mirroring
    /// `PackedMmmc::reset_with`) and the output lanes recycle `out`'s
    /// limb buffers, so once warm a call performs **zero** heap
    /// allocations — asserted by `tests/alloc_free.rs` with a counting
    /// global allocator.
    ///
    /// # Panics
    /// Panics on empty input, mismatched lengths, more than
    /// [`MAX_LANES`] lanes, or any operand `≥ 2N`;
    /// [`BitSlicedBatch::try_mont_mul_batch_into`] is the fallible
    /// variant.
    pub fn mont_mul_batch_into(&mut self, xs: &[Ubig], ys: &[Ubig], out: &mut Vec<Ubig>) -> u64 {
        self.try_mont_mul_batch_into(xs, ys, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::mont_mul_batch_into`] returning every input rejection
    /// as a typed [`MmmError`] (with the offending lane index for
    /// out-of-range operands) instead of panicking.
    pub fn try_mont_mul_batch_into(
        &mut self,
        xs: &[Ubig],
        ys: &[Ubig],
        out: &mut Vec<Ubig>,
    ) -> Result<u64, MmmError> {
        validate_mont_batch(&self.params, MAX_LANES, xs, ys)?;
        let l = self.l;
        self.load(xs, ys);
        run_wave(
            l,
            &self.x_pos,
            &self.y_pos,
            &self.n_pos,
            &mut self.t,
            &mut self.c0,
            &mut self.c1,
            &mut self.m_even,
        );
        let cycles = (3 * l + 4) as u64;
        self.total_cycles += cycles;
        if self.hardening.is_hardened() {
            cond_sub_bitsliced(l, &self.n_pos, &mut self.t);
        }
        slices_to_lanes_into(&self.t[1..=l + 1], xs.len(), out);
        Ok(cycles)
    }

    /// [`Self::mont_mul_batch_into`] returning a freshly allocated
    /// result vector alongside the cycle count.
    pub fn mont_mul_batch_counted(&mut self, xs: &[Ubig], ys: &[Ubig]) -> (Vec<Ubig>, u64) {
        let mut out = Vec::with_capacity(xs.len());
        let cycles = self.mont_mul_batch_into(xs, ys, &mut out);
        (out, cycles)
    }
}

/// The full `3l + 3`-step wave-band simulation (see the module docs):
/// per cycle, only the live diagonal band of cells is evaluated, in
/// place. A free function on slice parameters on purpose:
/// parameter-level `&`/`&mut` references carry `noalias` guarantees
/// into LLVM, which is what lets the band loop auto-vectorize (as
/// field borrows inside a method the buffers are mutually unprovable
/// aliases and the vectorizer gives up).
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn run_wave(
    l: usize,
    x_pos: &[u64],
    y: &[u64],
    n: &[u64],
    t: &mut [u64],
    c0: &mut [u64],
    c1: &mut [u64],
    m_even: &mut [u64],
) {
    // Explicit common length so every index below is provably in
    // bounds (band j ≤ l, wave index (τ−j)/2 ≤ l+1 < w).
    let w = l + 2;
    let (x_pos, y, n) = (&x_pos[..w], &y[..w], &n[..w]);
    let t = &mut t[..w];
    let c0 = &mut c0[..w];
    let c1 = &mut c1[..w];
    let m_even = &mut m_even[..w];

    for tau in 0..=(3 * l + 2) {
        // Rightmost cell (position 0): derives m from T feedback and
        // seeds the first carry. Only its even-cycle outputs are ever
        // consumed by the live lattice, and only while operand bits
        // are still being injected.
        if tau % 2 == 0 && tau / 2 <= l + 1 {
            let xy0 = x_pos[tau / 2] & y[0];
            m_even[tau / 2] = t[1] ^ xy0;
            c0[0] = t[1] | xy0;
        }

        // Live band of regular cells: j ≡ τ (mod 2), wave offset
        // σ = τ − j even in [0, 2(l+1)], and 1 ≤ j ≤ l − 1 (position
        // 1 is the first-bit cell, but with c1[0] pinned to zero the
        // regular equations degrade to exactly its HA form; position
        // l is the leftmost cell, special-cased below).
        let j_lo = {
            let lo = tau.saturating_sub(2 * l + 2).max(1);
            lo + ((lo ^ tau) & 1)
        };
        let j_hi = {
            let hi = (l - 1).min(tau);
            // One below if parity mismatches (j_hi may underflow the
            // band entirely; the range check below handles that).
            hi.wrapping_sub((hi ^ tau) & 1)
        };
        let mut j = j_lo;
        while j <= j_hi && j_hi < w {
            // u is the wave index: operand bit and m value feeding
            // this cell. In-place updates are safe: reads (j±1) come
            // from opposite-parity slots no live cell writes this
            // cycle.
            let u = (tau - j) / 2;
            let t_in = t[j + 1];
            let c0_in = c0[j - 1];
            let c1_in = c1[j - 1];
            let a = x_pos[u] & y[j];
            let b = m_even[u] & n[j];
            let s1 = t_in ^ a ^ b;
            let k1 = (t_in & a) | (t_in & b) | (a & b);
            t[j] = s1 ^ c0_in;
            let k2 = s1 & c0_in;
            c0[j] = k1 ^ c1_in ^ k2;
            c1[j] = (k1 & c1_in) | (k1 & k2) | (c1_in & k2);
            j += 2;
        }

        // Leftmost cell (position l): live when its wave offset is
        // even and still a real (valid) wave. No m·n term (n_l = 0);
        // produces the two top digits.
        if tau >= l && (tau - l).is_multiple_of(2) && (tau - l) / 2 <= l + 1 {
            let u = (tau - l) / 2;
            let a = x_pos[u] & y[l];
            let t_in = t[l + 1];
            let c0_in = c0[l - 1];
            t[l] = t_in ^ a ^ c0_in;
            let carry = (t_in & a) | (t_in & c0_in) | (a & c0_in);
            t[l + 1] = carry ^ c1[l - 1];
        }
    }
}

/// The branchless canonicalizing final subtraction in the bit-sliced
/// domain: a **full-subtractor chain over bit rows** with all 64
/// lanes' borrows carried in one lane word. Value bit `b` of lane `k`
/// lives in bit `k` of `t[b + 1]`; the matching modulus bit is the
/// broadcast mask `n_pos[b]` (zero for `b = l`, since `N < 2^l`).
/// Per row the standard full-subtractor equations run as word ops:
///
/// ```text
/// diff    = t ^ n ^ borrow
/// borrow' = (!t & (n | borrow)) | (n & borrow)
/// ```
///
/// Pass 1 runs the borrow chain alone; the final borrow word has bit
/// `k` set iff lane `k`'s value is `< N`, so `ge = !borrow` is the
/// per-lane keep-the-difference mask. Pass 2 recomputes the chain and
/// selects `(diff & ge) | (t & !ge)` in place. Both passes visit all
/// `l + 1` rows unconditionally — the schedule depends only on `l` —
/// and entry values obey the Walter bound (`< 2N`), so every lane
/// lands in `[0, N)`.
#[inline(never)]
fn cond_sub_bitsliced(l: usize, n_pos: &[u64], t: &mut [u64]) {
    let mut borrow = 0u64;
    for b in 0..=l {
        let tb = t[b + 1];
        let nb = if b < l { n_pos[b] } else { 0 };
        borrow = (!tb & (nb | borrow)) | (nb & borrow);
    }
    let ge = !borrow;
    let mut borrow = 0u64;
    for b in 0..=l {
        let tb = t[b + 1];
        let nb = if b < l { n_pos[b] } else { 0 };
        let diff = tb ^ nb ^ borrow;
        borrow = (!tb & (nb | borrow)) | (nb & borrow);
        t[b + 1] = (diff & ge) | (tb & !ge);
    }
}

impl BatchMontMul for BitSlicedBatch {
    fn params(&self) -> &MontgomeryParams {
        &self.params
    }

    fn max_lanes(&self) -> usize {
        MAX_LANES
    }

    fn mont_mul_batch(&mut self, xs: &[Ubig], ys: &[Ubig]) -> Vec<Ubig> {
        self.mont_mul_batch_counted(xs, ys).0
    }

    fn mont_mul_batch_into(&mut self, xs: &[Ubig], ys: &[Ubig], out: &mut Vec<Ubig>) {
        BitSlicedBatch::mont_mul_batch_into(self, xs, ys, out);
    }

    fn consumed_cycles(&self) -> Option<u64> {
        Some(self.total_cycles)
    }

    fn set_hardening(&mut self, mode: HardeningMode) {
        self.hardening = mode;
    }

    fn hardening(&self) -> HardeningMode {
        self.hardening
    }

    fn name(&self) -> &'static str {
        "bit-sliced batch (64 lanes)"
    }
}

/// Adapter running a scalar [`MontMul`] engine lane by lane behind the
/// [`BatchMontMul`] interface — the baseline the bit-sliced engine is
/// benchmarked against, and a correctness cross-check.
#[derive(Debug, Clone)]
pub struct SequentialBatch<E: MontMul> {
    engine: E,
}

impl<E: MontMul> SequentialBatch<E> {
    /// Wraps a scalar engine.
    pub fn new(engine: E) -> Self {
        SequentialBatch { engine }
    }
}

impl<E: MontMul> BatchMontMul for SequentialBatch<E> {
    fn params(&self) -> &MontgomeryParams {
        self.engine.params()
    }

    fn max_lanes(&self) -> usize {
        usize::MAX
    }

    fn mont_mul_batch(&mut self, xs: &[Ubig], ys: &[Ubig]) -> Vec<Ubig> {
        assert_eq!(xs.len(), ys.len(), "operand count mismatch");
        xs.iter()
            .zip(ys)
            .map(|(x, y)| self.engine.mont_mul(x, y))
            .collect()
    }

    fn consumed_cycles(&self) -> Option<u64> {
        self.engine.consumed_cycles()
    }

    fn name(&self) -> &'static str {
        "sequential batch adapter"
    }
}

/// Montgomery-multiplies an arbitrary number of lane pairs by sharding
/// them into 64-lane batches and fanning the batches out across cores
/// with rayon (results keep input order). Engines are checked out of
/// the process-wide [`pool`] keyed by `params`, so repeated calls stop
/// rebuilding parameters and reallocating lane state — each worker
/// reuses a warm engine of the **process-default backend**
/// ([`crate::engine::EngineKind::default_kind`], the radix-2⁶⁴ CIOS
/// scan); [`mont_mul_many_with`] selects a backend explicitly. Every
/// backend returns bit-identical results.
pub fn mont_mul_many(params: &MontgomeryParams, xs: &[Ubig], ys: &[Ubig]) -> Vec<Ubig> {
    mont_mul_many_with(params, xs, ys, EngineKind::default_kind())
}

/// [`mont_mul_many`] on an explicit backend — the cross-checking and
/// wave-model-experiment entry point.
pub fn mont_mul_many_with(
    params: &MontgomeryParams,
    xs: &[Ubig],
    ys: &[Ubig],
    kind: EngineKind,
) -> Vec<Ubig> {
    assert_eq!(xs.len(), ys.len(), "operand count mismatch");
    mont_mul_many_sharded(params, xs, ys, kind, MAX_LANES, HardeningMode::Off)
}

/// Fully fallible [`mont_mul_many`] driven by an [`EngineConfig`]
/// (backend and shard width): every input rejection — length mismatch,
/// an operand `≥ 2N` (reported with its index in `xs`/`ys`, not
/// shard-local), a bit-sliced request on hardware-unsafe parameters —
/// comes back as a typed [`MmmError`] instead of a panic, so one bad
/// request cannot abort a serving process. Empty input is `Ok(vec![])`
/// (a sharding façade has no lanes to reject). Ok-path results are
/// bit-identical to [`mont_mul_many_with`] on the same backend.
pub fn try_mont_mul_many(
    params: &MontgomeryParams,
    xs: &[Ubig],
    ys: &[Ubig],
    config: &EngineConfig,
) -> Result<Vec<Ubig>, MmmError> {
    if xs.len() != ys.len() {
        return Err(MmmError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    config.backend().ensure_supports(params)?;
    pool::try_global()?;
    for (k, (x, y)) in xs.iter().zip(ys).enumerate() {
        if !(params.check_operand(x) && params.check_operand(y)) {
            return Err(MmmError::OperandOutOfRange {
                lane: k,
                bound: crate::error::OperandBound::TwoN,
            });
        }
    }
    Ok(mont_mul_many_sharded(
        params,
        xs,
        ys,
        config.backend(),
        config.shard_lanes(),
        config.hardening(),
    ))
}

/// The shared sharding core of [`mont_mul_many_with`] /
/// [`try_mont_mul_many`]: inputs are assumed validated. Under
/// [`HardeningMode::Hardened`] every checked-out engine runs its
/// branchless canonicalizing final subtraction, so results are the
/// canonical `< N` representatives (the same residues; `Off` returns
/// the raw Algorithm-2 `< 2N` values).
fn mont_mul_many_sharded(
    params: &MontgomeryParams,
    xs: &[Ubig],
    ys: &[Ubig],
    kind: EngineKind,
    shard_lanes: usize,
    hardening: HardeningMode,
) -> Vec<Ubig> {
    let width = shard_lanes.clamp(1, MAX_LANES);
    let shards: Vec<(&[Ubig], &[Ubig])> = xs.chunks(width).zip(ys.chunks(width)).collect();
    shards
        .into_par_iter()
        .map(|(sx, sy)| {
            let mut engine = pool::global().checkout_kind(params, kind);
            engine.set_hardening(hardening);
            engine.mont_mul_batch(sx, sy)
        })
        .collect::<Vec<Vec<Ubig>>>()
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modgen::{random_operand, random_safe_params};
    use crate::montgomery::mont_mul_alg2;
    use crate::wave_packed::PackedMmmc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_lane_matches_solo_packed_engine() {
        let mut rng = StdRng::seed_from_u64(201);
        for l in [3usize, 8, 31, 63, 64, 65, 130] {
            let p = random_safe_params(&mut rng, l);
            let lanes = 64.min(2 * l);
            let xs: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &p)).collect();
            let ys: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &p)).collect();
            let mut batch = BitSlicedBatch::new(p.clone());
            let (got, cycles) = batch.mont_mul_batch_counted(&xs, &ys);
            assert_eq!(cycles, (3 * l + 4) as u64);
            let mut solo = PackedMmmc::new(p.clone());
            for k in 0..lanes {
                assert_eq!(
                    got[k],
                    solo.mont_mul(&xs[k], &ys[k]),
                    "lane {k} diverged at l={l}"
                );
            }
        }
    }

    #[test]
    fn hardened_batch_outputs_are_canonical_residues() {
        let mut rng = StdRng::seed_from_u64(207);
        for l in [3usize, 17, 63, 64, 65, 130] {
            let p = random_safe_params(&mut rng, l);
            let lanes = 64.min(2 * l);
            let xs: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &p)).collect();
            let ys: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &p)).collect();
            let mut batch = BitSlicedBatch::new(p.clone());
            batch.set_hardening(HardeningMode::Hardened);
            let got = batch.mont_mul_batch(&xs, &ys);
            for k in 0..lanes {
                let want = mont_mul_alg2(&p, &xs[k], &ys[k]).rem(p.n());
                assert_eq!(got[k], want, "lane {k} not canonical at l={l}");
                assert!(got[k] < *p.n());
            }
            // Switching back restores the raw < 2N contract.
            batch.set_hardening(HardeningMode::Off);
            let raw = batch.mont_mul_batch(&xs, &ys);
            for k in 0..lanes {
                assert_eq!(raw[k], mont_mul_alg2(&p, &xs[k], &ys[k]));
            }
        }
    }

    #[test]
    fn partial_batches_match_reference() {
        let mut rng = StdRng::seed_from_u64(202);
        let p = random_safe_params(&mut rng, 48);
        let mut batch = BitSlicedBatch::new(p.clone());
        for lanes in [1usize, 3, 63, 64] {
            let xs: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &p)).collect();
            let ys: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &p)).collect();
            let got = batch.mont_mul_batch(&xs, &ys);
            assert_eq!(got.len(), lanes);
            for k in 0..lanes {
                assert_eq!(
                    got[k],
                    mont_mul_alg2(&p, &xs[k], &ys[k]),
                    "lanes={lanes} k={k}"
                );
            }
        }
    }

    #[test]
    fn engine_is_reusable_across_batches() {
        let mut rng = StdRng::seed_from_u64(203);
        let p = random_safe_params(&mut rng, 20);
        let mut batch = BitSlicedBatch::new(p.clone());
        for round in 0..5 {
            let xs: Vec<Ubig> = (0..7).map(|_| random_operand(&mut rng, &p)).collect();
            let ys: Vec<Ubig> = (0..7).map(|_| random_operand(&mut rng, &p)).collect();
            let got = batch.mont_mul_batch(&xs, &ys);
            for k in 0..7 {
                assert_eq!(got[k], mont_mul_alg2(&p, &xs[k], &ys[k]), "round {round}");
            }
        }
        assert_eq!(batch.consumed_cycles(), Some(5 * (3 * 20 + 4)));
    }

    #[test]
    fn sequential_adapter_agrees_with_batch() {
        let mut rng = StdRng::seed_from_u64(204);
        let p = random_safe_params(&mut rng, 33);
        let xs: Vec<Ubig> = (0..10).map(|_| random_operand(&mut rng, &p)).collect();
        let ys: Vec<Ubig> = (0..10).map(|_| random_operand(&mut rng, &p)).collect();
        let mut seq = SequentialBatch::new(PackedMmmc::new(p.clone()));
        let mut bat = BitSlicedBatch::new(p.clone());
        assert_eq!(seq.mont_mul_batch(&xs, &ys), bat.mont_mul_batch(&xs, &ys));
    }

    #[test]
    fn sharded_many_handles_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(205);
        let p = random_safe_params(&mut rng, 16);
        for count in [1usize, 64, 65, 200] {
            let xs: Vec<Ubig> = (0..count).map(|_| random_operand(&mut rng, &p)).collect();
            let ys: Vec<Ubig> = (0..count).map(|_| random_operand(&mut rng, &p)).collect();
            let got = mont_mul_many(&p, &xs, &ys);
            assert_eq!(got.len(), count);
            for k in 0..count {
                assert_eq!(
                    got[k],
                    mont_mul_alg2(&p, &xs[k], &ys[k]),
                    "count={count} k={k}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 64 lanes")]
    fn rejects_oversized_batch() {
        let mut rng = StdRng::seed_from_u64(206);
        let p = random_safe_params(&mut rng, 8);
        let xs: Vec<Ubig> = (0..65).map(|_| random_operand(&mut rng, &p)).collect();
        let ys = xs.clone();
        let _ = BitSlicedBatch::new(p).mont_mul_batch(&xs, &ys);
    }

    #[test]
    #[should_panic(expected = "operands must be < 2N")]
    fn rejects_out_of_range_operand() {
        let mut rng = StdRng::seed_from_u64(207);
        let p = random_safe_params(&mut rng, 8);
        let bad = p.two_n();
        let _ = BitSlicedBatch::new(p.clone())
            .mont_mul_batch(std::slice::from_ref(&bad), std::slice::from_ref(&bad));
    }
}

//! Radix-2⁵² carry-save CIOS Montgomery multiplication — the
//! vector-unit-shaped production backend.
//!
//! ## Why 52-bit digits
//!
//! The paper's systolic array fixes radix `r = 2` because a one-bit
//! digit is what its hardware cells can absorb per wave. On a modern
//! CPU the analogous move is picking the radix that fits the vector
//! unit: **52-bit digits stored one per 64-bit lane**. The 12 spare
//! bits per lane are carry headroom, so the inner multiply-accumulate
//! loop never ripples a carry — high halves of the 52×52→104-bit
//! products are *deferred* into the neighbouring digit and the whole
//! accumulator is renormalized **once per outer scan step**, not once
//! per digit. This is exactly the shape of AVX-512-IFMA's
//! `vpmadd52lo/hi` instructions, and the same dataflow maps onto AVX2
//! `mul_epu32` pairs and onto plain u64 arithmetic (which LLVM
//! auto-vectorizes), so one algorithm serves three kernels:
//!
//! * [`Cios52Kernel::Portable`] — branch-free u64/u128 carry-save MACs
//!   over the struct-of-arrays lane layout; runs on any host.
//! * [`Cios52Kernel::Avx2`] — 4 lanes per `__m256i`, each 52×52
//!   product assembled from three `_mm256_mul_epu32` 32×32→64
//!   multiplies via a 26-bit operand split.
//! * [`Cios52Kernel::Ifma`] — 8 lanes per `__m512i`,
//!   `_mm512_madd52lo_epu64` / `_mm512_madd52hi_epu64` doing the
//!   52×52→104 MAC in one instruction each.
//!
//! CPU features are detected once per process
//! ([`Cios52Kernel::available`], a `OnceLock`) and the strongest
//! available kernel is selected ([`Cios52Kernel::active`]); every
//! kernel computes the identical function, asserted lane-for-lane by
//! the unit tests below and the cross-engine suites.
//!
//! ## Same contract, third radix
//!
//! Like the radix-2⁶⁴ scan ([`crate::cios`]), this engine implements
//! the **same mathematical function** as Algorithm 2 — `T = (x·y +
//! M·N)/2^{l+2}` with the unique `M < 2^{l+2}` — *not* a digit-domain
//! variant with `R = 2^{52·s}`. The reduction by `2^{l+2}` factors
//! into `⌊(l+2)/52⌋` full 52-bit steps plus one partial step for the
//! remaining `(l+2) mod 52` bits, so the result is **bit-identical**
//! to [`crate::cios::CiosBatch`], [`crate::batch::BitSlicedBatch`]
//! and `Ubig::modpow`, including the non-canonical `< 2N`
//! representative. Operands enter and leave in ordinary 64-bit limbs;
//! the 64↔52-bit conversions ([`limbs_to_digits52`] /
//! [`digits52_to_limbs`]) are internal to one batch call. The digit
//! geometry (`s₅₂`, `n0' mod 2⁵²`) is derived once in
//! [`MontgomeryParams::radix52`][crate::montgomery::MontgomeryParams::radix52],
//! next to the word-domain view. DESIGN.md §9 derives the
//! representation and the carry headroom budget.
//!
//! ## Constant-time status
//!
//! Identical to the radix-2⁶⁴ scan: fixed schedule, no final
//! subtraction, no data-dependent branches; quotient digits feed
//! multiplies, never indexing. Under [`HardeningMode::Hardened`] the
//! word-form output (after the digit→word scatter, which is
//! shape-driven and value-independent) gets the same branchless
//! canonicalizing final subtraction as the radix-2⁶⁴ backend
//! (`cios::cond_sub_rows`) — one decision borrow chain plus
//! one masked subtraction per lane, so hardened outputs are `< N` on
//! every kernel with a value-independent schedule. DESIGN.md §12 has
//! the full per-path table.

use crate::config::HardeningMode;
use crate::error::{validate_mont_batch, MmmError};
use crate::montgomery::MontgomeryParams;
use crate::traits::BatchMontMul;
use mmm_bigint::limbs::{Limb, LIMB_BITS};
use mmm_bigint::transpose::{lanes_to_limbs_into, limbs_to_lanes_into};
use mmm_bigint::Ubig;
use std::sync::OnceLock;

/// Lanes one [`Cios52Batch`] advances per call (matches
/// [`crate::batch::MAX_LANES`] so sharding logic is engine-agnostic).
pub const MAX_LANES: usize = crate::batch::MAX_LANES;

/// Payload bits per digit: 52 of the 64 lane bits carry value, the
/// top 12 are deferred-carry headroom.
pub const DIGIT_BITS: usize = 52;

/// Mask selecting one digit's payload bits.
pub const DIGIT_MASK: u64 = (1 << DIGIT_BITS) - 1;

/// Per-width geometry of the radix-2⁵² scan over `R = 2^{l+2}`: the
/// digit-domain view from `MontgomeryParams::radix52` plus the word
/// count of the 64-bit I/O representation.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    /// Digit count `s₅₂ = ⌈(l+2)/52⌉`.
    s: usize,
    /// Number of full 52-bit reduction steps `⌊(l+2)/52⌋`.
    full: usize,
    /// Remaining shift `(l+2) mod 52` handled by the partial step.
    rem: u32,
    /// `n0' = -N⁻¹ mod 2⁵²`.
    n0_inv: u64,
    /// Operand limb count of the 64-bit I/O form, `⌈(l+2)/64⌉`.
    sw: usize,
}

impl Geometry {
    fn of(params: &MontgomeryParams) -> Self {
        let r = params.radix52();
        Geometry {
            s: r.digits(),
            full: r.full(),
            rem: r.rem(),
            n0_inv: r.n0_inv(),
            sw: (params.l() + 2).div_ceil(LIMB_BITS),
        }
    }
}

/// Splits a little-endian 64-bit limb vector into `digits` 52-bit
/// digits (little-endian, one digit per returned u64, all `< 2⁵²`).
/// Digit `d` holds bits `[52d, 52d + 52)` of the value; bits beyond
/// the input are zero.
pub fn limbs_to_digits52(limbs: &[u64], digits: usize) -> Vec<u64> {
    let mut out = vec![0u64; digits];
    for (d, o) in out.iter_mut().enumerate() {
        let bit = d * DIGIT_BITS;
        let w = bit / LIMB_BITS;
        let b = (bit % LIMB_BITS) as u32;
        if w >= limbs.len() {
            break;
        }
        let mut v = limbs[w] >> b;
        if b as usize > LIMB_BITS - DIGIT_BITS && w + 1 < limbs.len() {
            v |= limbs[w + 1] << (LIMB_BITS as u32 - b);
        }
        *o = v & DIGIT_MASK;
    }
    out
}

/// Inverse of [`limbs_to_digits52`]: packs normalized 52-bit digits
/// back into `limbs` 64-bit limbs.
///
/// # Panics
/// Panics if any digit has payload above bit 52 (the carry-save
/// headroom must have been normalized away) or if the value does not
/// fit `limbs` limbs.
pub fn digits52_to_limbs(digits: &[u64], limbs: usize) -> Vec<u64> {
    let mut out = vec![0u64; limbs];
    for (d, &v) in digits.iter().enumerate() {
        assert!(v <= DIGIT_MASK, "digit {d} not normalized: {v:#x}");
        let bit = d * DIGIT_BITS;
        let w = bit / LIMB_BITS;
        let b = (bit % LIMB_BITS) as u32;
        let spills = b as usize > LIMB_BITS - DIGIT_BITS;
        if w < limbs {
            out[w] |= v << b;
            if spills && w + 1 < limbs {
                out[w + 1] |= v >> (LIMB_BITS as u32 - b);
            } else if spills {
                assert_eq!(
                    v >> (LIMB_BITS as u32 - b),
                    0,
                    "value exceeds {limbs} limbs"
                );
            }
        } else {
            assert_eq!(v, 0, "value exceeds {limbs} limbs");
        }
    }
    out
}

/// Word-SoA → digit-SoA: for each digit row, gather bits
/// `[52d, 52d + 52)` from the (at most two) straddled word rows, all
/// `MAX_LANES` lanes at once.
fn soa_words_to_digits52(words: &[Limb], sw: usize, digits: &mut [Limb], s: usize) {
    for d in 0..s {
        let bit = d * DIGIT_BITS;
        let w = bit / LIMB_BITS;
        let b = (bit % LIMB_BITS) as u32;
        let wrow = row(words, w);
        let drow = row_mut(digits, d);
        if b as usize > LIMB_BITS - DIGIT_BITS && w + 1 < sw {
            let nrow = row(words, w + 1);
            let up = LIMB_BITS as u32 - b;
            for k in 0..MAX_LANES {
                drow[k] = ((wrow[k] >> b) | (nrow[k] << up)) & DIGIT_MASK;
            }
        } else {
            for k in 0..MAX_LANES {
                drow[k] = (wrow[k] >> b) & DIGIT_MASK;
            }
        }
    }
}

/// Digit-SoA → word-SoA: scatter each normalized digit row into the
/// word rows it straddles. Requires every digit `< 2⁵²` (the kernels
/// end with a normalization pass, so this holds on the output path).
fn soa_digits52_to_words(digits: &[Limb], s: usize, words: &mut [Limb], sw: usize) {
    words[..sw * MAX_LANES].fill(0);
    for d in 0..s {
        let bit = d * DIGIT_BITS;
        let w = bit / LIMB_BITS;
        let b = (bit % LIMB_BITS) as u32;
        let drow = *row(digits, d);
        {
            let wrow = row_mut(words, w);
            for k in 0..MAX_LANES {
                debug_assert!(drow[k] <= DIGIT_MASK, "unnormalized digit on output");
                wrow[k] |= drow[k] << b;
            }
        }
        if b as usize > LIMB_BITS - DIGIT_BITS && w + 1 < sw {
            let down = LIMB_BITS as u32 - b;
            let nrow = row_mut(words, w + 1);
            for k in 0..MAX_LANES {
                nrow[k] |= drow[k] >> down;
            }
        }
    }
}

/// Which concrete inner-loop implementation a [`Cios52Batch`] runs.
/// All kernels compute the identical function; selection is purely a
/// throughput decision made once per process from CPU features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cios52Kernel {
    /// Branch-free u64/u128 carry-save MACs; runs on any host and is
    /// written so LLVM auto-vectorizes the lane loops.
    Portable,
    /// x86-64 AVX2: 4 lanes per `__m256i`, 52×52 products from three
    /// `mul_epu32` via a 26-bit split.
    Avx2,
    /// x86-64 AVX-512-IFMA: 8 lanes per `__m512i`, `vpmadd52lo/hi`.
    Ifma,
}

impl Cios52Kernel {
    /// Short stable name, recorded in benchmark JSON so results say
    /// which kernel actually ran.
    pub fn name(self) -> &'static str {
        match self {
            Cios52Kernel::Portable => "portable",
            Cios52Kernel::Avx2 => "avx2",
            Cios52Kernel::Ifma => "ifma",
        }
    }

    /// Every kernel this host can run, ordered weakest → strongest.
    /// CPU feature detection happens **once** per process (cached in a
    /// `OnceLock`); the portable kernel is always present, so the
    /// slice is never empty.
    pub fn available() -> &'static [Cios52Kernel] {
        static AVAILABLE: OnceLock<Vec<Cios52Kernel>> = OnceLock::new();
        AVAILABLE.get_or_init(|| {
            let mut v = vec![Cios52Kernel::Portable];
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    v.push(Cios52Kernel::Avx2);
                }
                if std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512ifma")
                {
                    v.push(Cios52Kernel::Ifma);
                }
            }
            v
        })
    }

    /// The strongest kernel this host can run — what
    /// [`Cios52Batch::new`] selects.
    pub fn active() -> Cios52Kernel {
        *Self::available()
            .last()
            .expect("portable kernel is always available")
    }

    /// The next-weaker kernel available on this host, or `None` from
    /// the portable kernel (there is nothing simpler to retreat to).
    /// Used by the integrity layer's demotion ladder: a kernel that
    /// produced a corrupted lane steps down rather than being trusted
    /// again.
    pub fn weaker(self) -> Option<Cios52Kernel> {
        let avail = Self::available();
        let pos = avail.iter().position(|&k| k == self)?;
        pos.checked_sub(1).map(|i| avail[i])
    }
}

/// The radix-2⁵² carry-save CIOS **batch** engine: up to 64
/// independent Montgomery multiplications per call in
/// struct-of-arrays lane layout, bit-identical to every other
/// Algorithm-2 engine.
#[derive(Debug, Clone)]
pub struct Cios52Batch {
    params: MontgomeryParams,
    geo: Geometry,
    kernel: Cios52Kernel,
    /// Modulus as `s` normalized 52-bit digits (shared by all lanes).
    n: Vec<Limb>,
    /// Modulus in 64-bit word form padded to `sw` limbs — what the
    /// hardened final subtraction compares the word-form output
    /// against.
    n_words: Vec<Limb>,
    /// Word-domain SoA staging buffer (`sw` rows), reused for input
    /// transposes and the output conversion.
    wscratch: Vec<Limb>,
    /// Digit-domain SoA operands: `x[d·64 + k]` is digit `d`, lane `k`.
    x: Vec<Limb>,
    y: Vec<Limb>,
    /// Digit-domain SoA accumulator, `s + 2` rows.
    t: Vec<Limb>,
    /// Constant-time mode: when hardened, every result is
    /// canonicalized `< N` (see the module docs).
    hardening: HardeningMode,
}

impl Cios52Batch {
    /// Creates an engine for `params` running the strongest kernel
    /// this host supports ([`Cios52Kernel::active`]). Like the other
    /// software scans there is no hardware-safety requirement: any
    /// valid parameters (e.g. `tight` widths) are accepted.
    pub fn new(params: MontgomeryParams) -> Self {
        Self::with_kernel(params, Cios52Kernel::active())
    }

    /// Creates an engine pinned to a specific kernel — how the tests
    /// cross-check every available kernel against the oracle.
    ///
    /// # Panics
    /// Panics if `kernel` is not in [`Cios52Kernel::available`] on
    /// this host.
    pub fn with_kernel(params: MontgomeryParams, kernel: Cios52Kernel) -> Self {
        assert!(
            Cios52Kernel::available().contains(&kernel),
            "kernel {} not available on this host",
            kernel.name()
        );
        let geo = Geometry::of(&params);
        let mut n_words = params.n().limbs().to_vec();
        n_words.resize(geo.sw, 0);
        Cios52Batch {
            n: limbs_to_digits52(&n_words, geo.s),
            n_words,
            wscratch: vec![0; geo.sw * MAX_LANES],
            x: vec![0; geo.s * MAX_LANES],
            y: vec![0; geo.s * MAX_LANES],
            t: vec![0; (geo.s + 2) * MAX_LANES],
            params,
            geo,
            kernel,
            hardening: HardeningMode::Off,
        }
    }

    /// The engine's parameters.
    pub fn params(&self) -> &MontgomeryParams {
        &self.params
    }

    /// Which kernel this engine runs.
    pub fn kernel(&self) -> Cios52Kernel {
        self.kernel
    }

    /// Rebuilds this engine on the next-weaker available kernel
    /// ([`Cios52Kernel::weaker`]); `true` if a demotion happened,
    /// `false` when already on the portable kernel. Scratch buffers
    /// are rebuilt — demotion is a cold recovery path, not a hot one.
    pub fn demote(&mut self) -> bool {
        match self.kernel.weaker() {
            Some(weaker) => {
                // The rebuild must not silently drop the constant-time
                // mode — a demoted hardened engine stays hardened.
                let hardening = self.hardening;
                *self = Cios52Batch::with_kernel(self.params.clone(), weaker);
                self.hardening = hardening;
                true
            }
            None => false,
        }
    }

    /// Runs one batch of up to 64 multiplications, writing the
    /// per-lane results into `out` (recycling its limb buffers — the
    /// warm path performs zero heap allocations, like the other batch
    /// engines').
    ///
    /// # Panics
    /// Panics on empty input, mismatched lengths, more than
    /// [`MAX_LANES`] lanes, or any operand `≥ 2N`;
    /// [`Cios52Batch::try_mont_mul_batch_into`] is the fallible
    /// variant.
    pub fn mont_mul_batch_into(&mut self, xs: &[Ubig], ys: &[Ubig], out: &mut Vec<Ubig>) {
        self.try_mont_mul_batch_into(xs, ys, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::mont_mul_batch_into`] returning every input rejection
    /// as a typed [`MmmError`] instead of panicking.
    pub fn try_mont_mul_batch_into(
        &mut self,
        xs: &[Ubig],
        ys: &[Ubig],
        out: &mut Vec<Ubig>,
    ) -> Result<(), MmmError> {
        validate_mont_batch(&self.params, MAX_LANES, xs, ys)?;
        lanes_to_limbs_into(xs, self.geo.sw, MAX_LANES, &mut self.wscratch);
        soa_words_to_digits52(&self.wscratch, self.geo.sw, &mut self.x, self.geo.s);
        lanes_to_limbs_into(ys, self.geo.sw, MAX_LANES, &mut self.wscratch);
        soa_words_to_digits52(&self.wscratch, self.geo.sw, &mut self.y, self.geo.s);
        self.t.fill(0);
        self.run_kernel();
        soa_digits52_to_words(&self.t, self.geo.s, &mut self.wscratch, self.geo.sw);
        if self.hardening.is_hardened() {
            crate::cios::cond_sub_rows(&self.n_words, &mut self.wscratch, self.geo.sw);
        }
        limbs_to_lanes_into(
            &self.wscratch[..self.geo.sw * MAX_LANES],
            self.geo.sw,
            MAX_LANES,
            xs.len(),
            out,
        );
        Ok(())
    }

    /// Dispatches to the selected kernel. The SIMD kernels are
    /// `unsafe` only because of their `#[target_feature]` contract —
    /// [`Cios52Batch::with_kernel`] already proved the features are
    /// present on this host.
    #[allow(unsafe_code)]
    fn run_kernel(&mut self) {
        match self.kernel {
            Cios52Kernel::Portable => {
                run_cios52_portable(self.geo, &self.n, &self.x, &self.y, &mut self.t)
            }
            #[cfg(target_arch = "x86_64")]
            Cios52Kernel::Avx2 => unsafe {
                run_cios52_avx2(self.geo, &self.n, &self.x, &self.y, &mut self.t)
            },
            #[cfg(target_arch = "x86_64")]
            Cios52Kernel::Ifma => unsafe {
                run_cios52_ifma(self.geo, &self.n, &self.x, &self.y, &mut self.t)
            },
            #[cfg(not(target_arch = "x86_64"))]
            Cios52Kernel::Avx2 | Cios52Kernel::Ifma => {
                unreachable!("SIMD kernels are x86-64 only and gated by with_kernel")
            }
        }
    }
}

impl BatchMontMul for Cios52Batch {
    fn params(&self) -> &MontgomeryParams {
        &self.params
    }

    fn max_lanes(&self) -> usize {
        MAX_LANES
    }

    fn mont_mul_batch(&mut self, xs: &[Ubig], ys: &[Ubig]) -> Vec<Ubig> {
        let mut out = Vec::with_capacity(xs.len());
        Cios52Batch::mont_mul_batch_into(self, xs, ys, &mut out);
        out
    }

    fn mont_mul_batch_into(&mut self, xs: &[Ubig], ys: &[Ubig], out: &mut Vec<Ubig>) {
        Cios52Batch::mont_mul_batch_into(self, xs, ys, out);
    }

    fn demote_kernel(&mut self) -> bool {
        self.demote()
    }

    fn set_hardening(&mut self, mode: HardeningMode) {
        self.hardening = mode;
    }

    fn hardening(&self) -> HardeningMode {
        self.hardening
    }

    fn name(&self) -> &'static str {
        match self.kernel {
            Cios52Kernel::Portable => "radix-2^52 carry-save CIOS batch (portable, 64 lanes)",
            Cios52Kernel::Avx2 => "radix-2^52 carry-save CIOS batch (avx2, 64 lanes)",
            Cios52Kernel::Ifma => "radix-2^52 carry-save CIOS batch (ifma, 64 lanes)",
        }
    }
}

/// A lane row of the SoA state: fixed-size so the per-lane loops have
/// a compile-time trip count (64) for the vectorizer.
type LaneRow = [Limb; MAX_LANES];

/// Borrows digit row `j` of an SoA buffer as a fixed-size lane row.
#[inline(always)]
fn row(soa: &[Limb], j: usize) -> &LaneRow {
    soa[j * MAX_LANES..(j + 1) * MAX_LANES]
        .try_into()
        .expect("row is exactly MAX_LANES wide")
}

/// Mutable variant of [`row`].
#[inline(always)]
fn row_mut(soa: &mut [Limb], j: usize) -> &mut LaneRow {
    (&mut soa[j * MAX_LANES..(j + 1) * MAX_LANES])
        .try_into()
        .expect("row is exactly MAX_LANES wide")
}

/// The once-per-outer-step normalization: ripple each lane's deferred
/// carries up through digit rows `0..=top`, leaving every digit
/// `< 2⁵²`. This is the *only* carry chain in the whole scan.
#[inline(always)]
fn normalize52(t: &mut [Limb], top: usize) {
    let mut c: LaneRow = [0; MAX_LANES];
    for j in 0..=top {
        let tj = row_mut(t, j);
        for k in 0..MAX_LANES {
            let v = tj[k] + c[k];
            tj[k] = v & DIGIT_MASK;
            c[k] = v >> DIGIT_BITS;
        }
    }
    debug_assert_eq!(c, [0; MAX_LANES], "carry out of the top digit row");
}

/// The portable carry-save scan (see the module docs): `full` 52-bit
/// steps plus the partial reduction, all 64 lanes in lockstep. Inner
/// loops are branch-free 52×52→104 MACs with the high halves deferred
/// one digit ([`normalize52`] runs once per outer step). A free
/// function over slice parameters on purpose — parameter-level
/// `&`/`&mut` carry `noalias` into LLVM so the lane loops vectorize.
#[inline(never)]
#[allow(clippy::needless_range_loop)] // j indexes n and the SoA accumulator rows together
fn run_cios52_portable(geo: Geometry, n: &[Limb], x: &[Limb], y: &[Limb], t: &mut [Limb]) {
    let s = geo.s;
    let mut hi: LaneRow = [0; MAX_LANES];
    let mut m: LaneRow = [0; MAX_LANES];

    for i in 0..geo.full {
        let xi = *row(x, i);
        // Pass A: t += x_i ⊙ y, low halves into t[j], high halves
        // deferred into t[j+1]'s addend (no carry ripple).
        hi.fill(0);
        for j in 0..s {
            let yj = row(y, j);
            let tj = row_mut(t, j);
            for k in 0..MAX_LANES {
                let p = (xi[k] as u128) * (yj[k] as u128);
                tj[k] += ((p as u64) & DIGIT_MASK) + hi[k];
                hi[k] = (p >> DIGIT_BITS) as u64;
            }
        }
        {
            let ts = row_mut(t, s);
            for k in 0..MAX_LANES {
                ts[k] += hi[k];
            }
        }

        // m = t_0 · n0' mod 2⁵². Digit weights are multiples of 2⁵²,
        // so t[0] mod 2⁵² is the whole value mod 2⁵² even while t[0]
        // still carries unnormalized headroom bits.
        for k in 0..MAX_LANES {
            m[k] = t[k].wrapping_mul(geo.n0_inv) & DIGIT_MASK;
        }

        // Pass B: t = (t + m ⊙ N) / 2⁵², fused with the digit shift.
        // Digit 0 of t + m·N is divisible by 2⁵², so its headroom
        // bits are an exact carry into digit 1.
        {
            let t0 = row(t, 0);
            for k in 0..MAX_LANES {
                let p = (m[k] as u128) * (n[0] as u128);
                let v = t0[k] + ((p as u64) & DIGIT_MASK);
                debug_assert_eq!(v & DIGIT_MASK, 0, "low digit must cancel");
                hi[k] = (v >> DIGIT_BITS) + ((p >> DIGIT_BITS) as u64);
            }
        }
        for j in 1..s {
            // Row j-1 is written while row j is read: split the borrow
            // at the row boundary so both are live at once.
            let (left, right) = t.split_at_mut(j * MAX_LANES);
            let out_row: &mut LaneRow = (&mut left[(j - 1) * MAX_LANES..])
                .try_into()
                .expect("row is exactly MAX_LANES wide");
            let tj: &LaneRow = right[..MAX_LANES]
                .try_into()
                .expect("row is exactly MAX_LANES wide");
            let nj = n[j];
            for k in 0..MAX_LANES {
                let p = (m[k] as u128) * (nj as u128);
                out_row[k] = tj[k] + ((p as u64) & DIGIT_MASK) + hi[k];
                hi[k] = (p >> DIGIT_BITS) as u64;
            }
        }
        {
            let (left, right) = t.split_at_mut(s * MAX_LANES);
            let out_row: &mut LaneRow = (&mut left[(s - 1) * MAX_LANES..])
                .try_into()
                .expect("row is exactly MAX_LANES wide");
            let ts: &mut LaneRow = (&mut right[..MAX_LANES])
                .try_into()
                .expect("row is exactly MAX_LANES wide");
            for k in 0..MAX_LANES {
                out_row[k] = ts[k] + hi[k];
                ts[k] = 0;
            }
        }

        // The one normalization of this outer step. T < 4N < 2^{52s},
        // so the value fits rows 0..s and row s ends zero.
        normalize52(t, s);
    }

    if geo.rem > 0 {
        // Partial step: absorb the top (rem-bit) digit of x, then
        // reduce by the remaining 2^rem.
        let xf = *row(x, geo.full);
        hi.fill(0);
        for j in 0..s {
            let yj = row(y, j);
            let tj = row_mut(t, j);
            for k in 0..MAX_LANES {
                let p = (xf[k] as u128) * (yj[k] as u128);
                tj[k] += ((p as u64) & DIGIT_MASK) + hi[k];
                hi[k] = (p >> DIGIT_BITS) as u64;
            }
        }
        {
            let ts = row_mut(t, s);
            for k in 0..MAX_LANES {
                ts[k] += hi[k];
            }
        }

        // m < 2^rem: n0' mod 2^rem is -N⁻¹ mod 2^rem, and t[0] mod
        // 2^rem is exact for the same positional-weight reason.
        let rem_mask = (1u64 << geo.rem) - 1;
        for k in 0..MAX_LANES {
            m[k] = t[k].wrapping_mul(geo.n0_inv) & rem_mask;
        }

        // Pass C: t += m ⊙ N, unshifted (the shift is by rem < 52
        // bits, not a whole digit).
        hi.fill(0);
        for j in 0..s {
            let nj = n[j];
            let tj = row_mut(t, j);
            for k in 0..MAX_LANES {
                let p = (m[k] as u128) * (nj as u128);
                tj[k] += ((p as u64) & DIGIT_MASK) + hi[k];
                hi[k] = (p >> DIGIT_BITS) as u64;
            }
        }
        {
            let ts = row_mut(t, s);
            for k in 0..MAX_LANES {
                ts[k] += hi[k];
            }
        }

        // Normalize fully *before* the bit shift — the shift reads
        // exact digit bit patterns, so no headroom may remain.
        normalize52(t, s + 1);
        debug_assert!(
            (0..MAX_LANES).all(|k| t[k] & rem_mask == 0),
            "low rem bits must cancel"
        );

        // Lane-wise right shift by rem bits across the digit rows.
        let up = DIGIT_BITS as u32 - geo.rem;
        for j in 0..=s {
            let upper = *row(t, j + 1);
            let cur = row_mut(t, j);
            for k in 0..MAX_LANES {
                cur[k] = (cur[k] >> geo.rem) | ((upper[k] & rem_mask) << up);
            }
        }
    }

    debug_assert!(
        t[s * MAX_LANES..].iter().all(|&v| v == 0),
        "result exceeds s digits"
    );
}

/// The AVX-512-IFMA kernel: 8 lanes per `__m512i`, so the 64-lane
/// batch is 8 vector columns; each column runs the whole scan before
/// the next starts (the working set of one column — `(s+2)·64` bytes
/// of accumulator plus operands — stays cache-resident). The 52×52→104
/// MAC is one `vpmadd52lo` + one `vpmadd52hi`; both read only the low
/// 52 bits of their multiplicands, which the normalization discipline
/// guarantees for `x`, `y`, `n` and `m`.
///
/// # Safety
/// Requires `avx512f` and `avx512ifma` at runtime (checked by
/// [`Cios52Kernel::available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512ifma")]
#[allow(unsafe_code)]
#[allow(clippy::needless_range_loop)] // j indexes n and the SoA accumulator rows together
unsafe fn run_cios52_ifma(geo: Geometry, n: &[Limb], x: &[Limb], y: &[Limb], t: &mut [Limb]) {
    use core::arch::x86_64::*;
    const W: usize = 8;
    let s = geo.s;
    let mask52 = _mm512_set1_epi64(DIGIT_MASK as i64);
    let n0inv = _mm512_set1_epi64(geo.n0_inv as i64);
    let zero = _mm512_setzero_si512();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let tp = t.as_mut_ptr();

    for c in 0..MAX_LANES / W {
        let off = c * W;
        for i in 0..geo.full {
            let xi = _mm512_loadu_si512(xp.add(i * MAX_LANES + off) as *const _);
            // Pass A: t += x_i ⊙ y, high halves deferred one digit.
            let mut hi = zero;
            for j in 0..s {
                let yj = _mm512_loadu_si512(yp.add(j * MAX_LANES + off) as *const _);
                let tj = _mm512_loadu_si512(tp.add(j * MAX_LANES + off) as *const _);
                let acc = _mm512_madd52lo_epu64(_mm512_add_epi64(tj, hi), xi, yj);
                _mm512_storeu_si512(tp.add(j * MAX_LANES + off) as *mut _, acc);
                hi = _mm512_madd52hi_epu64(zero, xi, yj);
            }
            let ts = _mm512_loadu_si512(tp.add(s * MAX_LANES + off) as *const _);
            _mm512_storeu_si512(
                tp.add(s * MAX_LANES + off) as *mut _,
                _mm512_add_epi64(ts, hi),
            );

            // m = lo52(t_0 · n0') — madd52lo reads exactly the low 52
            // bits of t_0, which equal the value mod 2⁵².
            let t0 = _mm512_loadu_si512(tp.add(off) as *const _);
            let m = _mm512_madd52lo_epu64(zero, t0, n0inv);

            // Pass B fused with the digit shift. Digit 0 of t + m·N
            // is divisible by 2⁵²: its headroom is an exact carry.
            let n0 = _mm512_set1_epi64(n[0] as i64);
            let v0 = _mm512_madd52lo_epu64(t0, m, n0);
            let mut carry = _mm512_add_epi64(
                _mm512_srli_epi64(v0, DIGIT_BITS as u32),
                _mm512_madd52hi_epu64(zero, m, n0),
            );
            for j in 1..s {
                let nj = _mm512_set1_epi64(n[j] as i64);
                let tj = _mm512_loadu_si512(tp.add(j * MAX_LANES + off) as *const _);
                let out = _mm512_madd52lo_epu64(_mm512_add_epi64(tj, carry), m, nj);
                _mm512_storeu_si512(tp.add((j - 1) * MAX_LANES + off) as *mut _, out);
                carry = _mm512_madd52hi_epu64(zero, m, nj);
            }
            let ts = _mm512_loadu_si512(tp.add(s * MAX_LANES + off) as *const _);
            _mm512_storeu_si512(
                tp.add((s - 1) * MAX_LANES + off) as *mut _,
                _mm512_add_epi64(ts, carry),
            );
            _mm512_storeu_si512(tp.add(s * MAX_LANES + off) as *mut _, zero);

            // The one normalization of this outer step.
            let mut cv = zero;
            for j in 0..=s {
                let v = _mm512_add_epi64(
                    _mm512_loadu_si512(tp.add(j * MAX_LANES + off) as *const _),
                    cv,
                );
                _mm512_storeu_si512(
                    tp.add(j * MAX_LANES + off) as *mut _,
                    _mm512_and_si512(v, mask52),
                );
                cv = _mm512_srli_epi64(v, DIGIT_BITS as u32);
            }
        }

        if geo.rem > 0 {
            // Partial step: top rem-bit digit of x, then reduce by
            // the remaining 2^rem.
            let xf = _mm512_loadu_si512(xp.add(geo.full * MAX_LANES + off) as *const _);
            let mut hi = zero;
            for j in 0..s {
                let yj = _mm512_loadu_si512(yp.add(j * MAX_LANES + off) as *const _);
                let tj = _mm512_loadu_si512(tp.add(j * MAX_LANES + off) as *const _);
                let acc = _mm512_madd52lo_epu64(_mm512_add_epi64(tj, hi), xf, yj);
                _mm512_storeu_si512(tp.add(j * MAX_LANES + off) as *mut _, acc);
                hi = _mm512_madd52hi_epu64(zero, xf, yj);
            }
            let ts = _mm512_loadu_si512(tp.add(s * MAX_LANES + off) as *const _);
            _mm512_storeu_si512(
                tp.add(s * MAX_LANES + off) as *mut _,
                _mm512_add_epi64(ts, hi),
            );

            let rem_mask = _mm512_set1_epi64(((1u64 << geo.rem) - 1) as i64);
            let t0 = _mm512_loadu_si512(tp.add(off) as *const _);
            let m = _mm512_and_si512(_mm512_madd52lo_epu64(zero, t0, n0inv), rem_mask);

            // Pass C: t += m ⊙ N, unshifted.
            let mut carry = zero;
            for j in 0..s {
                let nj = _mm512_set1_epi64(n[j] as i64);
                let tj = _mm512_loadu_si512(tp.add(j * MAX_LANES + off) as *const _);
                let out = _mm512_madd52lo_epu64(_mm512_add_epi64(tj, carry), m, nj);
                _mm512_storeu_si512(tp.add(j * MAX_LANES + off) as *mut _, out);
                carry = _mm512_madd52hi_epu64(zero, m, nj);
            }
            let ts = _mm512_loadu_si512(tp.add(s * MAX_LANES + off) as *const _);
            _mm512_storeu_si512(
                tp.add(s * MAX_LANES + off) as *mut _,
                _mm512_add_epi64(ts, carry),
            );

            // Normalize rows 0..=s+1, then shift right by rem bits.
            let mut cv = zero;
            for j in 0..=s + 1 {
                let v = _mm512_add_epi64(
                    _mm512_loadu_si512(tp.add(j * MAX_LANES + off) as *const _),
                    cv,
                );
                _mm512_storeu_si512(
                    tp.add(j * MAX_LANES + off) as *mut _,
                    _mm512_and_si512(v, mask52),
                );
                cv = _mm512_srli_epi64(v, DIGIT_BITS as u32);
            }
            let shr = _mm_cvtsi32_si128(geo.rem as i32);
            let shl = _mm_cvtsi32_si128((DIGIT_BITS as u32 - geo.rem) as i32);
            for j in 0..=s {
                let cur = _mm512_loadu_si512(tp.add(j * MAX_LANES + off) as *const _);
                let upper = _mm512_loadu_si512(tp.add((j + 1) * MAX_LANES + off) as *const _);
                let v = _mm512_or_si512(
                    _mm512_srl_epi64(cur, shr),
                    _mm512_sll_epi64(_mm512_and_si512(upper, rem_mask), shl),
                );
                _mm512_storeu_si512(tp.add(j * MAX_LANES + off) as *mut _, v);
            }
        }
    }
}

/// The AVX2 kernel: 4 lanes per `__m256i` (16 vector columns). AVX2
/// has no 52- or even 64-bit multiplier, so each 52×52 product is
/// assembled from three `_mm256_mul_epu32` 32×32→64 multiplies via a
/// 26-bit operand split `a = a₀ + a₁·2²⁶`:
///
/// ```text
/// a·b = a₀b₀ + (a₀b₁ + a₁b₀)·2²⁶ + a₁b₁·2⁵²
///     = plo + phi·2⁵²    with  plo = a₀b₀ + (mid mod 2²⁶)·2²⁶ < 2⁵³
///                              phi = a₁b₁ + ⌊mid/2²⁶⌋
/// ```
///
/// `plo` is *redundant* (up to 53 bits) — which is fine, because the
/// accumulator is carry-save anyway; the headroom budget in
/// DESIGN.md §9 covers it.
///
/// # Safety
/// Requires `avx2` at runtime (checked by [`Cios52Kernel::available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
#[allow(clippy::needless_range_loop)] // j indexes n and the SoA accumulator rows together
unsafe fn run_cios52_avx2(geo: Geometry, n: &[Limb], x: &[Limb], y: &[Limb], t: &mut [Limb]) {
    use core::arch::x86_64::*;
    const W: usize = 4;
    const HALF_BITS: u32 = 26;
    let s = geo.s;
    let mask52 = _mm256_set1_epi64x(DIGIT_MASK as i64);
    let mask26 = _mm256_set1_epi64x(((1u64 << HALF_BITS) - 1) as i64);
    let zero = _mm256_setzero_si256();
    // n0' pre-split into 26-bit halves.
    let n0inv_lo = _mm256_set1_epi64x((geo.n0_inv & ((1 << HALF_BITS) - 1)) as i64);
    let n0inv_hi = _mm256_set1_epi64x((geo.n0_inv >> HALF_BITS) as i64);
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let tp = t.as_mut_ptr();

    // (plo, phi) of the lane-wise 52×52 product of already-split
    // operands; see the function docs for the identity.
    macro_rules! mul52 {
        ($a0:expr, $a1:expr, $b:expr) => {{
            let b0 = _mm256_and_si256($b, mask26);
            let b1 = _mm256_srli_epi64($b, HALF_BITS as i32);
            let ll = _mm256_mul_epu32($a0, b0);
            let mid = _mm256_add_epi64(_mm256_mul_epu32($a0, b1), _mm256_mul_epu32($a1, b0));
            let hh = _mm256_mul_epu32($a1, b1);
            let plo = _mm256_add_epi64(
                ll,
                _mm256_slli_epi64(_mm256_and_si256(mid, mask26), HALF_BITS as i32),
            );
            let phi = _mm256_add_epi64(hh, _mm256_srli_epi64(mid, HALF_BITS as i32));
            (plo, phi)
        }};
    }

    for c in 0..MAX_LANES / W {
        let off = c * W;
        for i in 0..geo.full {
            let xi = _mm256_loadu_si256(xp.add(i * MAX_LANES + off) as *const _);
            let xi0 = _mm256_and_si256(xi, mask26);
            let xi1 = _mm256_srli_epi64(xi, HALF_BITS as i32);
            // Pass A.
            let mut hi = zero;
            for j in 0..s {
                let yj = _mm256_loadu_si256(yp.add(j * MAX_LANES + off) as *const _);
                let (plo, phi) = mul52!(xi0, xi1, yj);
                let tj = _mm256_loadu_si256(tp.add(j * MAX_LANES + off) as *const _);
                let acc = _mm256_add_epi64(_mm256_add_epi64(tj, hi), plo);
                _mm256_storeu_si256(tp.add(j * MAX_LANES + off) as *mut _, acc);
                hi = phi;
            }
            let ts = _mm256_loadu_si256(tp.add(s * MAX_LANES + off) as *const _);
            _mm256_storeu_si256(
                tp.add(s * MAX_LANES + off) as *mut _,
                _mm256_add_epi64(ts, hi),
            );

            // m = t_0 · n0' mod 2⁵², from 26-bit pieces. t_0 may hold
            // up to 54 bits, so its high half still fits 32 bits and
            // `mul_epu32` stays exact; the `slli` wraps mod 2⁶⁴ which
            // preserves the low 52 bits we keep.
            let t0 = _mm256_loadu_si256(tp.add(off) as *const _);
            let t0l = _mm256_and_si256(t0, mask26);
            let t0h = _mm256_srli_epi64(t0, HALF_BITS as i32);
            let q = _mm256_add_epi64(
                _mm256_mul_epu32(t0l, n0inv_lo),
                _mm256_slli_epi64(
                    _mm256_add_epi64(
                        _mm256_mul_epu32(t0l, n0inv_hi),
                        _mm256_mul_epu32(t0h, n0inv_lo),
                    ),
                    HALF_BITS as i32,
                ),
            );
            let m = _mm256_and_si256(q, mask52);
            let m0 = _mm256_and_si256(m, mask26);
            let m1 = _mm256_srli_epi64(m, HALF_BITS as i32);

            // Pass B fused with the digit shift.
            let n0 = _mm256_set1_epi64x(n[0] as i64);
            let (plo, phi) = mul52!(m0, m1, n0);
            let v0 = _mm256_add_epi64(t0, plo);
            let mut carry = _mm256_add_epi64(_mm256_srli_epi64(v0, DIGIT_BITS as i32), phi);
            for j in 1..s {
                let nj = _mm256_set1_epi64x(n[j] as i64);
                let (plo, phi) = mul52!(m0, m1, nj);
                let tj = _mm256_loadu_si256(tp.add(j * MAX_LANES + off) as *const _);
                let out = _mm256_add_epi64(_mm256_add_epi64(tj, carry), plo);
                _mm256_storeu_si256(tp.add((j - 1) * MAX_LANES + off) as *mut _, out);
                carry = phi;
            }
            let ts = _mm256_loadu_si256(tp.add(s * MAX_LANES + off) as *const _);
            _mm256_storeu_si256(
                tp.add((s - 1) * MAX_LANES + off) as *mut _,
                _mm256_add_epi64(ts, carry),
            );
            _mm256_storeu_si256(tp.add(s * MAX_LANES + off) as *mut _, zero);

            // The one normalization of this outer step.
            let mut cv = zero;
            for j in 0..=s {
                let v = _mm256_add_epi64(
                    _mm256_loadu_si256(tp.add(j * MAX_LANES + off) as *const _),
                    cv,
                );
                _mm256_storeu_si256(
                    tp.add(j * MAX_LANES + off) as *mut _,
                    _mm256_and_si256(v, mask52),
                );
                cv = _mm256_srli_epi64(v, DIGIT_BITS as i32);
            }
        }

        if geo.rem > 0 {
            let xf = _mm256_loadu_si256(xp.add(geo.full * MAX_LANES + off) as *const _);
            let xf0 = _mm256_and_si256(xf, mask26);
            let xf1 = _mm256_srli_epi64(xf, HALF_BITS as i32);
            let mut hi = zero;
            for j in 0..s {
                let yj = _mm256_loadu_si256(yp.add(j * MAX_LANES + off) as *const _);
                let (plo, phi) = mul52!(xf0, xf1, yj);
                let tj = _mm256_loadu_si256(tp.add(j * MAX_LANES + off) as *const _);
                let acc = _mm256_add_epi64(_mm256_add_epi64(tj, hi), plo);
                _mm256_storeu_si256(tp.add(j * MAX_LANES + off) as *mut _, acc);
                hi = phi;
            }
            let ts = _mm256_loadu_si256(tp.add(s * MAX_LANES + off) as *const _);
            _mm256_storeu_si256(
                tp.add(s * MAX_LANES + off) as *mut _,
                _mm256_add_epi64(ts, hi),
            );

            let rem_mask = _mm256_set1_epi64x(((1u64 << geo.rem) - 1) as i64);
            let t0 = _mm256_loadu_si256(tp.add(off) as *const _);
            let t0l = _mm256_and_si256(t0, mask26);
            let t0h = _mm256_srli_epi64(t0, HALF_BITS as i32);
            let q = _mm256_add_epi64(
                _mm256_mul_epu32(t0l, n0inv_lo),
                _mm256_slli_epi64(
                    _mm256_add_epi64(
                        _mm256_mul_epu32(t0l, n0inv_hi),
                        _mm256_mul_epu32(t0h, n0inv_lo),
                    ),
                    HALF_BITS as i32,
                ),
            );
            let m = _mm256_and_si256(q, rem_mask);
            let m0 = _mm256_and_si256(m, mask26);
            let m1 = _mm256_srli_epi64(m, HALF_BITS as i32);

            // Pass C, unshifted.
            let mut carry = zero;
            for j in 0..s {
                let nj = _mm256_set1_epi64x(n[j] as i64);
                let (plo, phi) = mul52!(m0, m1, nj);
                let tj = _mm256_loadu_si256(tp.add(j * MAX_LANES + off) as *const _);
                let out = _mm256_add_epi64(_mm256_add_epi64(tj, carry), plo);
                _mm256_storeu_si256(tp.add(j * MAX_LANES + off) as *mut _, out);
                carry = phi;
            }
            let ts = _mm256_loadu_si256(tp.add(s * MAX_LANES + off) as *const _);
            _mm256_storeu_si256(
                tp.add(s * MAX_LANES + off) as *mut _,
                _mm256_add_epi64(ts, carry),
            );

            // Normalize rows 0..=s+1, then shift right by rem bits.
            let mut cv = zero;
            for j in 0..=s + 1 {
                let v = _mm256_add_epi64(
                    _mm256_loadu_si256(tp.add(j * MAX_LANES + off) as *const _),
                    cv,
                );
                _mm256_storeu_si256(
                    tp.add(j * MAX_LANES + off) as *mut _,
                    _mm256_and_si256(v, mask52),
                );
                cv = _mm256_srli_epi64(v, DIGIT_BITS as i32);
            }
            let shr = _mm_cvtsi32_si128(geo.rem as i32);
            let shl = _mm_cvtsi32_si128((DIGIT_BITS as u32 - geo.rem) as i32);
            for j in 0..=s {
                let cur = _mm256_loadu_si256(tp.add(j * MAX_LANES + off) as *const _);
                let upper = _mm256_loadu_si256(tp.add((j + 1) * MAX_LANES + off) as *const _);
                let v = _mm256_or_si256(
                    _mm256_srl_epi64(cur, shr),
                    _mm256_sll_epi64(_mm256_and_si256(upper, rem_mask), shl),
                );
                _mm256_storeu_si256(tp.add(j * MAX_LANES + off) as *mut _, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modgen::{random_operand, random_safe_params};
    use crate::montgomery::mont_mul_alg2;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn kernel_detection_is_cached_and_nonempty() {
        let a = Cios52Kernel::available();
        assert!(!a.is_empty());
        assert_eq!(
            a[0],
            Cios52Kernel::Portable,
            "portable is the universal floor"
        );
        // Cached: the same slice comes back.
        assert_eq!(a.as_ptr(), Cios52Kernel::available().as_ptr());
        assert!(a.contains(&Cios52Kernel::active()));
    }

    #[test]
    fn conversion_round_trips_and_splits_bits() {
        let mut rng = StdRng::seed_from_u64(701);
        for limbs in 1usize..=6 {
            let digits = (limbs * 64).div_ceil(DIGIT_BITS);
            for _ in 0..50 {
                let ws: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
                let ds = limbs_to_digits52(&ws, digits);
                assert!(ds.iter().all(|&d| d <= DIGIT_MASK));
                // Digit d holds bits [52d, 52d+52) — spot-check via
                // the big-integer view.
                let v = Ubig::from_limbs(ws.clone());
                for (d, &dig) in ds.iter().enumerate() {
                    let want = (&v >> (d * DIGIT_BITS))
                        .low_bits(DIGIT_BITS)
                        .to_u64()
                        .expect("52 bits fit one limb");
                    assert_eq!(dig, want, "digit {d} of {limbs} limbs");
                }
                assert_eq!(digits52_to_limbs(&ds, limbs), ws, "{limbs} limbs");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn digits_to_limbs_rejects_unnormalized_digit() {
        let _ = digits52_to_limbs(&[DIGIT_MASK + 1], 1);
    }

    #[test]
    fn demotion_walks_down_to_portable_and_stays_correct() {
        let mut rng = StdRng::seed_from_u64(705);
        let p = random_safe_params(&mut rng, 64);
        let xs: Vec<Ubig> = (0..4).map(|_| random_operand(&mut rng, &p)).collect();
        let ys: Vec<Ubig> = (0..4).map(|_| random_operand(&mut rng, &p)).collect();
        let want: Vec<Ubig> = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| mont_mul_alg2(&p, x, y))
            .collect();
        let mut e = Cios52Batch::new(p.clone());
        assert_eq!(e.kernel(), Cios52Kernel::active());
        let mut demotions = 0;
        loop {
            let mut out = Vec::new();
            e.mont_mul_batch_into(&xs, &ys, &mut out);
            assert_eq!(out, want, "kernel {} wrong", e.kernel().name());
            if !e.demote() {
                break;
            }
            demotions += 1;
        }
        assert_eq!(e.kernel(), Cios52Kernel::Portable, "floor is portable");
        assert_eq!(
            demotions + 1,
            Cios52Kernel::available().len(),
            "one demotion per tier"
        );
        assert_eq!(Cios52Kernel::Portable.weaker(), None);
    }

    #[test]
    fn every_available_kernel_matches_alg2_exhaustive_small() {
        // N = 13, l = 4 (full = 0, rem = 6): every x, y < 2N, and the
        // non-canonical < 2N representative must match exactly.
        let p = MontgomeryParams::new(&Ubig::from(13u64), 4);
        for &kernel in Cios52Kernel::available() {
            let mut e = Cios52Batch::with_kernel(p.clone(), kernel);
            for x in 0u64..26 {
                let xs: Vec<Ubig> = (0..26u64).map(Ubig::from).collect();
                let xx: Vec<Ubig> = (0..26).map(|_| Ubig::from(x)).collect();
                let got = e.mont_mul_batch(&xx, &xs);
                for y in 0u64..26 {
                    let want = mont_mul_alg2(&p, &Ubig::from(x), &Ubig::from(y));
                    assert_eq!(got[y as usize], want, "{} x={x} y={y}", kernel.name());
                }
            }
        }
    }

    #[test]
    fn every_available_kernel_matches_alg2_across_widths() {
        // Widths straddling the 52-bit digit boundary (l = 50 ⇒ rem =
        // 0, single digit), the 64-bit word boundary, and multi-digit
        // sizes; full lanes.
        let mut rng = StdRng::seed_from_u64(702);
        for l in [
            3usize, 30, 49, 50, 51, 62, 63, 64, 65, 100, 102, 103, 150, 256,
        ] {
            let p = random_safe_params(&mut rng, l);
            let xs: Vec<Ubig> = (0..MAX_LANES)
                .map(|_| random_operand(&mut rng, &p))
                .collect();
            let ys: Vec<Ubig> = (0..MAX_LANES)
                .map(|_| random_operand(&mut rng, &p))
                .collect();
            let want: Vec<Ubig> = xs
                .iter()
                .zip(&ys)
                .map(|(x, y)| mont_mul_alg2(&p, x, y))
                .collect();
            for &kernel in Cios52Kernel::available() {
                let mut e = Cios52Batch::with_kernel(p.clone(), kernel);
                let got = e.mont_mul_batch(&xs, &ys);
                assert_eq!(got, want, "{} l={l}", kernel.name());
            }
        }
    }

    #[test]
    fn every_available_kernel_accepts_tight_widths() {
        // No hardware-safety requirement; N ≳ ⅔·2^l widths included.
        let mut rng = StdRng::seed_from_u64(703);
        for bits in [64usize, 65, 128] {
            let mut n = Ubig::pow2(bits) - Ubig::one();
            if n.is_even() {
                n = n - Ubig::one();
            }
            let p = MontgomeryParams::tight(&n);
            assert!(!p.is_hardware_safe(), "bits={bits}");
            let xs: Vec<Ubig> = (0..8).map(|_| random_operand(&mut rng, &p)).collect();
            for &kernel in Cios52Kernel::available() {
                let mut e = Cios52Batch::with_kernel(p.clone(), kernel);
                let got = e.mont_mul_batch(&xs, &xs);
                for k in 0..8 {
                    assert_eq!(
                        got[k],
                        mont_mul_alg2(&p, &xs[k], &xs[k]),
                        "{} bits={bits} lane {k}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn partial_batches_and_engine_reuse() {
        let mut rng = StdRng::seed_from_u64(704);
        let p = random_safe_params(&mut rng, 48);
        let mut batch = Cios52Batch::new(p.clone());
        for lanes in [1usize, 3, 63, 64] {
            let xs: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &p)).collect();
            let ys: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &p)).collect();
            let got = batch.mont_mul_batch(&xs, &ys);
            assert_eq!(got.len(), lanes);
            for k in 0..lanes {
                assert_eq!(
                    got[k],
                    mont_mul_alg2(&p, &xs[k], &ys[k]),
                    "lanes={lanes} k={k}"
                );
            }
        }
    }

    #[test]
    fn outputs_feed_back_as_inputs() {
        // The Algorithm-2 closure property on every available kernel.
        let mut rng = StdRng::seed_from_u64(705);
        let p = random_safe_params(&mut rng, 70);
        let xs: Vec<Ubig> = (0..16).map(|_| random_operand(&mut rng, &p)).collect();
        for &kernel in Cios52Kernel::available() {
            let mut batch = Cios52Batch::with_kernel(p.clone(), kernel);
            let mut a = batch.mont_mul_batch(&xs, &xs);
            let mut want: Vec<Ubig> = xs.iter().map(|x| mont_mul_alg2(&p, x, x)).collect();
            for round in 0..4 {
                a = batch.mont_mul_batch(&a, &a);
                want = want.iter().map(|v| mont_mul_alg2(&p, v, v)).collect();
                assert_eq!(a, want, "{} round {round}", kernel.name());
            }
        }
    }

    #[test]
    fn hardened_outputs_are_canonical_on_every_kernel() {
        let mut rng = StdRng::seed_from_u64(708);
        for l in [3usize, 50, 51, 64, 103, 150] {
            let p = random_safe_params(&mut rng, l);
            let lanes = 64.min(2 * l);
            let xs: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &p)).collect();
            let ys: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &p)).collect();
            for &kernel in Cios52Kernel::available() {
                let mut e = Cios52Batch::with_kernel(p.clone(), kernel);
                e.set_hardening(HardeningMode::Hardened);
                let got = e.mont_mul_batch(&xs, &ys);
                for k in 0..lanes {
                    let want = mont_mul_alg2(&p, &xs[k], &ys[k]).rem(p.n());
                    assert_eq!(got[k], want, "{} lane {k} l={l}", kernel.name());
                    assert!(got[k] < *p.n(), "{} lane {k} l={l}", kernel.name());
                }
            }
        }
    }

    #[test]
    fn demotion_preserves_hardening() {
        let p = MontgomeryParams::new(&Ubig::from(13u64), 4);
        let mut e = Cios52Batch::new(p);
        e.set_hardening(HardeningMode::Hardened);
        while e.demote() {
            assert_eq!(
                e.hardening(),
                HardeningMode::Hardened,
                "demotion to {} dropped hardening",
                e.kernel().name()
            );
        }
        assert_eq!(e.hardening(), HardeningMode::Hardened);
    }

    #[test]
    #[should_panic(expected = "at most 64 lanes")]
    fn rejects_oversized_batch() {
        let mut rng = StdRng::seed_from_u64(706);
        let p = random_safe_params(&mut rng, 8);
        let xs: Vec<Ubig> = (0..65).map(|_| random_operand(&mut rng, &p)).collect();
        let ys = xs.clone();
        let _ = Cios52Batch::new(p).mont_mul_batch(&xs, &ys);
    }

    #[test]
    #[should_panic(expected = "operands must be < 2N")]
    fn rejects_out_of_range_operand() {
        let mut rng = StdRng::seed_from_u64(707);
        let p = random_safe_params(&mut rng, 8);
        let bad = p.two_n();
        let _ = Cios52Batch::new(p.clone())
            .mont_mul_batch(std::slice::from_ref(&bad), std::slice::from_ref(&bad));
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(Cios52Kernel::Portable.name(), "portable");
        assert_eq!(Cios52Kernel::Avx2.name(), "avx2");
        assert_eq!(Cios52Kernel::Ifma.name(), "ifma");
        let mut e = Cios52Batch::new(MontgomeryParams::new(&Ubig::from(13u64), 4));
        assert!(BatchMontMul::name(&e).contains(e.kernel().name()));
        assert!(BatchMontMul::name(&e).contains("radix-2^52"));
        let _ = e.mont_mul_batch(&[Ubig::one()], &[Ubig::one()]);
    }
}

//! Side-channel demonstration — the paper's §5 closes by noting that
//! its reduction-free design removes "reduction steps that are presumed
//! to be vulnerable to side-channel attacks". This example makes the
//! timing channel *visible* with the cycle-accurate engine, then closes
//! it:
//!
//! 1. Algorithm 3 (double-and-add / square-and-multiply) consumes
//!    cycles proportional to the scalar's Hamming weight → the cycle
//!    counter is a timing oracle for the secret.
//! 2. The Montgomery ladder performs the same work for every
//!    equal-length scalar → the oracle goes silent.
//!
//! ```sh
//! cargo run --release --example constant_time
//! ```

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::montgomery::MontgomeryParams;
use montgomery_systolic::core::wave::WaveMmmc;
use montgomery_systolic::ecc::{Curve, FieldCtx};

fn main() {
    let p = Ubig::from(40487u64);
    let params = MontgomeryParams::hardware_safe(&p);
    let mut f = FieldCtx::new(WaveMmmc::new(params));
    let curve = Curve::new(&mut f, &Ubig::from(2u64), &Ubig::from(3u64));
    let g = (1u64..)
        .find_map(|x| curve.lift_x(&mut f, &Ubig::from(x)))
        .expect("curve has points");

    // Three 16-bit scalars with Hamming weights 1, 8, 16.
    let scalars = [
        ("sparse (HW 1) ", Ubig::from(0x8000u64)),
        ("medium (HW 8) ", Ubig::from(0xAAAAu64)),
        ("dense  (HW 16)", Ubig::from(0xFFFFu64)),
    ];

    println!("double-and-add (Algorithm 3 style) — cycles leak the Hamming weight:");
    let mut da_counts = Vec::new();
    for (name, k) in &scalars {
        let before = f.consumed_cycles().unwrap();
        let _ = curve.scalar_mul(&mut f, k, &g);
        let used = f.consumed_cycles().unwrap() - before;
        println!("  k = {name}: {used:>7} cycles");
        da_counts.push(used);
    }
    assert!(da_counts[0] < da_counts[1] && da_counts[1] < da_counts[2]);

    println!("Montgomery ladder — identical cycles for every same-length scalar:");
    let mut ladder_counts = Vec::new();
    for (name, k) in &scalars {
        let before = f.consumed_cycles().unwrap();
        let _ = curve.scalar_mul_ladder(&mut f, k, &g);
        let used = f.consumed_cycles().unwrap() - before;
        println!("  k = {name}: {used:>7} cycles");
        ladder_counts.push(used);
    }
    assert_eq!(ladder_counts[0], ladder_counts[1]);
    assert_eq!(ladder_counts[1], ladder_counts[2]);

    println!(
        "\nladder overhead vs double-and-add on the dense scalar: {:.0}%",
        (ladder_counts[2] as f64 / da_counts[2] as f64 - 1.0) * 100.0
    );
    println!("the timing oracle is closed ✓");
}

//! FPGA implementation report: elaborates the MMMC across the paper's
//! bit-length sweep and prints every Table-2 quantity with the
//! published values alongside (a compact version of
//! `cargo run -p mmm-bench --bin table2`).
//!
//! ```sh
//! cargo run --release --example area_report
//! ```

use montgomery_systolic::core::{cost, Mmmc};
use montgomery_systolic::fpga::{FpgaReport, SlicePacker, VirtexETiming};
use montgomery_systolic::hdl::{AreaReport, CarryStyle};

fn main() {
    let packer = SlicePacker::default();
    let timing = VirtexETiming::default();
    let paper = [
        (32usize, 225usize, 9.256f64, 0.926f64),
        (64, 418, 9.221, 1.807),
        (128, 806, 10.242, 3.974),
        (256, 1548, 9.956, 7.686),
        (512, 2972, 10.501, 16.171),
        (1024, 5706, 10.458, 32.168),
    ];

    println!("MMMC implementation sweep (Virtex-E model, XorMux full adders)\n");
    for (l, paper_s, paper_tp, paper_tmmm) in paper {
        let mmmc = Mmmc::build(l, CarryStyle::XorMux);
        let gates = AreaReport::of(&mmmc.netlist);
        let report = FpgaReport::analyze(&mmmc.netlist, l, &packer, &timing);
        let tmmm = report.tmmm_us(cost::mmm_cycles(l));
        println!("{report}");
        println!(
            "         gates: {gates}; TMMM = {tmmm:.3} µs   [paper: S={paper_s}, Tp={paper_tp}, TMMM={paper_tmmm}]"
        );
    }
    println!("\ncycles per multiplication: 3l+4 (measured identically at gate level; see tests)");
}

//! RSA on the simulated hardware (§4.5 of the paper): generate a key,
//! encrypt on the *gate-level* exponentiator, decrypt in software, and
//! report the cycle budget next to the paper's cost model.
//!
//! ```sh
//! cargo run --release --example rsa_hardware
//! ```

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::expo::ModExp;
use montgomery_systolic::core::mmmc::GateEngine;
use montgomery_systolic::core::montgomery::MontgomeryParams;
use montgomery_systolic::core::{cost, Mmmc};
use montgomery_systolic::hdl::CarryStyle;
use montgomery_systolic::rsa::RsaKeyPair;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2003);

    // A deliberately small key so the gate-level simulation stays
    // snappy; swap 40 for 512+ with the wave engine for real sizes.
    let key = RsaKeyPair::generate(&mut rng, 40, 16);
    println!("N = {} ({} bits), E = {}", key.n, key.bits(), key.e);

    let params = MontgomeryParams::hardware_safe(&key.n);
    let l = params.l();
    let mmmc = Mmmc::build(l, CarryStyle::XorMux);
    println!(
        "MMMC elaborated at l = {l} ({} gates)",
        mmmc.netlist.gates().len()
    );

    let message = Ubig::from(123_456_789u64);
    println!("message   = {message}");

    // Encrypt: M^E mod N entirely on the simulated circuit.
    let mut enc = ModExp::new(GateEngine::new(&mmmc, params.clone()));
    let ciphertext = enc.modexp(&message, &key.e);
    let stats = enc.stats();
    let cycles = enc.consumed_cycles().expect("gate engine counts cycles");
    println!("ciphertext = {ciphertext}");
    println!(
        "encryption: {} squarings + {} multiplies + 2 domain transforms = {} Montgomery ops, {cycles} cycles",
        stats.squarings, stats.multiplications, stats.total_mont_muls
    );
    println!(
        "paper cost model for this exponent: {} cycles (pre {} + muls + post {})",
        cost::modexp_cycles_for_exponent(l, &key.e),
        cost::precompute_cycles(l),
        cost::postprocess_cycles(l)
    );

    // Decrypt two ways: gate-level exponentiator and software CRT.
    let mut dec = ModExp::new(GateEngine::new(&mmmc, params.clone()));
    let plain_hw = dec.modexp(&ciphertext, &key.d);
    let plain_crt = montgomery_systolic::rsa::decrypt_crt(&key, &ciphertext);
    println!("decrypted (hardware) = {plain_hw}");
    println!("decrypted (CRT)      = {plain_crt}");
    assert_eq!(plain_hw, message);
    assert_eq!(plain_crt, message);
    println!("round-trip OK ✓");
}

//! Quickstart: build the paper's Montgomery Modular Multiplication
//! Circuit at a small width, run one multiplication gate-by-gate, and
//! check it against the textbook definition.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use montgomery_systolic::core::mmmc::GateEngine;
use montgomery_systolic::core::montgomery::{mont_spec, MontgomeryParams};
use montgomery_systolic::core::{MmmError, Mmmc};
use montgomery_systolic::hdl::{AreaReport, CarryStyle};
use montgomery_systolic::Ubig;

fn main() -> Result<(), MmmError> {
    // An odd modulus; `try_hardware_safe` picks the minimal datapath
    // width at which the systolic array provably never drops a carry
    // — and rejects an invalid modulus (even, too small) as a typed
    // error instead of a panic.
    let n = Ubig::from(40487u64);
    let params = MontgomeryParams::try_hardware_safe(&n)?;
    let l = params.l();
    println!("modulus N = {n} -> datapath width l = {l}, R = 2^{}", l + 2);

    // Elaborate the circuit of Fig. 3: systolic array + ASM controller.
    let mmmc = Mmmc::build(l, CarryStyle::XorMux);
    let area = AreaReport::of(&mmmc.netlist);
    println!("MMMC netlist: {area}");

    // Any operands below 2N are legal (Algorithm 2 needs no final
    // subtraction thanks to Walter's bound 4N < R).
    let x = Ubig::from(52_001u64);
    let y = Ubig::from(77_503u64);
    let mut engine = GateEngine::new(&mmmc, params.clone());
    let (result, cycles) = engine.mont_mul_counted(&x, &y);

    println!(
        "Mont({x}, {y}) = {result}   [{cycles} cycles, expected 3l+4 = {}]",
        3 * l + 4
    );

    // Verify against x·y·R⁻¹ mod N computed with plain modular algebra.
    let want = mont_spec(&params, &x, &y, &params.r());
    assert_eq!(
        result.rem(&n),
        want,
        "hardware result must match the definition"
    );
    assert!(result < params.two_n(), "output bound: T < 2N");
    println!("verified: result ≡ x·y·R⁻¹ (mod N) and result < 2N ✓");
    Ok(())
}

//! A many-client exponentiation queue on the batch engines (the
//! radix-2⁶⁴ CIOS production backend by default; set
//! `MMM_ENGINE=bitsliced` to rerun on the systolic simulation).
//!
//! Simulates the serving shape the batch engines exist for: one RSA
//! key, a queue of clients each wanting a signature (a full modular
//! exponentiation), drained 64 lanes at a time with shards fanned out
//! across cores. Run with:
//!
//! ```text
//! cargo run --release --example batch_server [clients]
//! ```

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::{pool, ModExp, PackedMmmc};
use montgomery_systolic::rsa::{decrypt_crt_batch, sign_batch, verify_batch, RsaKeyPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let clients: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);

    let mut rng = StdRng::seed_from_u64(0x5E4E4);
    println!("generating a 256-bit RSA key (demo size)...");
    let key = RsaKeyPair::generate(&mut rng, 256, 16);
    // Parameters come from the per-key pool: the R mod N / R² mod N
    // divisions run once here, and every batch call below reuses both
    // the parameters and the warm engines parked by earlier calls.
    let params = pool::global().params_for(&key.n);
    println!(
        "key ready: |N| = {} bits, datapath width l = {}",
        key.n.bit_len(),
        params.l()
    );

    // The queue: every client submits a message to be signed.
    let queue: Vec<Ubig> = (0..clients)
        .map(|_| Ubig::random_below(&mut rng, &key.n))
        .collect();

    // Drain the whole queue through the batch engine.
    let start = Instant::now();
    let signatures = sign_batch(&key, &queue);
    let batch_time = start.elapsed();
    println!(
        "signed {clients} requests in {:.2?} ({:.1} sig/s) via 64-lane batches",
        batch_time,
        clients as f64 / batch_time.as_secs_f64()
    );

    // Verify everything (public exponent 65537 — cheap).
    let start = Instant::now();
    let verdicts = verify_batch(&key, &queue, &signatures);
    assert!(verdicts.into_iter().all(|ok| ok), "all signatures verify");
    println!("verified all {clients} in {:.2?}", start.elapsed());

    // The decryption side of the serving path: encrypt every message,
    // then CRT-decrypt the whole queue — two half-width windowed batch
    // runs (mod p and mod q) recombined with Garner per lane, ~4×
    // cheaper than the full-width scan.
    let ciphertexts: Vec<Ubig> = queue.iter().map(|m| m.modpow(&key.e, &key.n)).collect();
    let start = Instant::now();
    let decrypted = decrypt_crt_batch(&key, &ciphertexts);
    let crt_time = start.elapsed();
    assert_eq!(decrypted, queue, "CRT decryption roundtrips");
    println!(
        "CRT-decrypted {clients} ciphertexts in {:.2?} ({:.1} dec/s) via half-width windowed batches",
        crt_time,
        clients as f64 / crt_time.as_secs_f64()
    );
    let stats = pool::global().stats();
    println!(
        "engine pool: {} built, {} reused across shards",
        stats.engine_builds, stats.engine_reuses
    );

    // Reference point: the same work, one client at a time on the
    // packed wave model (only a slice of the queue, extrapolated).
    let sample = queue.len().min(8);
    if sample == 0 {
        println!("queue empty — nothing to compare");
        return;
    }
    let start = Instant::now();
    for m in &queue[..sample] {
        let mut me = ModExp::new(PackedMmmc::new(params.clone()));
        let _ = me.modexp(m, &key.d);
    }
    let seq = start.elapsed() / sample as u32 * clients as u32;
    println!(
        "sequential packed-model estimate for the same queue: {:.2?} ({:.2}x the batch time)",
        seq,
        seq.as_secs_f64() / batch_time.as_secs_f64()
    );
}

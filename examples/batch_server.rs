//! A many-client serving loop on the typed serving API: one
//! [`KeyedSession`] per RSA key, independent clients submitting
//! singleton requests into a [`BatchCollector`], full 64-lane shards
//! flushed through the batch engines.
//!
//! The engine configuration comes from one validated
//! `EngineConfig::from_env()` call — set `MMM_ENGINE=bitsliced` to
//! rerun the whole loop on the systolic simulation. Run with:
//!
//! ```text
//! cargo run --release --example batch_server [clients]
//! ```

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::{pool, EngineConfig, MmmError};
use montgomery_systolic::rsa::{BatchOp, KeyedSession, RsaKeyPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), MmmError> {
    let clients: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);

    let mut rng = StdRng::seed_from_u64(0x5E4E4);
    println!("generating a 256-bit RSA key (demo size)...");
    let key = RsaKeyPair::generate(&mut rng, 256, 16);

    // One validated configuration instead of scattered env-var reads:
    // MMM_ENGINE / MMM_POOL_KEYS land here, and a typo is an error
    // value — not a panic inside a OnceLock initializer.
    let config = EngineConfig::from_env()?;
    println!(
        "engine config: backend={}, shard width={} lanes",
        config.backend().name(),
        config.shard_lanes()
    );

    // The session owns the key and its pooled parameters for N, p and
    // q; construction pre-warms one engine per modulus.
    let session = KeyedSession::new(key, config)?;
    let key = session.key();
    println!("session ready: |N| = {} bits", key.n.bit_len());

    // --- Signing: the whole queue at once through the session. ---
    let queue: Vec<Ubig> = (0..clients)
        .map(|_| Ubig::random_below(&mut rng, &key.n))
        .collect();
    let start = Instant::now();
    let signatures = session.sign(&queue)?;
    let batch_time = start.elapsed();
    println!(
        "signed {clients} requests in {:.2?} ({:.1} sig/s) via 64-lane batches",
        batch_time,
        clients as f64 / batch_time.as_secs_f64()
    );
    let verdicts = session.verify(&queue, &signatures)?;
    assert!(verdicts.into_iter().all(|ok| ok), "all signatures verify");

    // --- Decryption: independent clients, one request at a time. ---
    // Each client holds one ciphertext; nobody assembles a Vec for
    // us. The collector aggregates singletons into full shards.
    let ciphertexts: Vec<Ubig> = queue.iter().map(|m| m.modpow(&key.e, &key.n)).collect();
    let mut collector = session.collector(BatchOp::DecryptCrt);
    let mut decrypted: Vec<Ubig> = Vec::with_capacity(clients);
    let start = Instant::now();
    for c in ciphertexts {
        collector.submit(c)?;
        // Flush whenever a full shard is ready — maximal lane
        // utilization; a latency-sensitive server would also flush on
        // a deadline.
        if collector.full_shards() > 0 {
            decrypted.extend(collector.flush()?);
        }
    }
    if !collector.is_empty() {
        decrypted.extend(collector.flush()?); // drain the partial tail
    }
    let crt_time = start.elapsed();
    assert_eq!(decrypted, queue, "CRT decryption roundtrips in order");
    println!(
        "CRT-decrypted {clients} singleton submissions in {:.2?} ({:.1} dec/s) via aggregated shards",
        crt_time,
        clients as f64 / crt_time.as_secs_f64()
    );

    // --- Bad input is a bounced request, not a dead server. ---
    let mut collector = session.collector(BatchOp::DecryptCrt);
    match collector.submit(key.n.clone()) {
        Err(MmmError::OperandOutOfRange { lane, .. }) => {
            println!(
                "rejected an unreduced ciphertext (would-be request {lane}) — serving continues"
            )
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    let stats = pool::global().stats();
    println!(
        "engine pool: {} built, {} reused across shards",
        stats.engine_builds, stats.engine_reuses
    );
    Ok(())
}

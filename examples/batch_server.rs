//! Arrival-rate-sweep load generator for the fault-tolerant serving
//! front-end (`mmm_rsa::serve`).
//!
//! Independent paced arrivals are submitted to a running [`Server`]
//! at a sweep of offered rates around the host's measured capacity;
//! for each (backend, rate) point the generator records achieved
//! throughput and p50/p99 submit→resolve latency (measured with
//! [`Ticket::wait_timed`]'s resolve timestamps, so waiting for
//! stragglers after the run does not distort the numbers). Every
//! response is checked bit-for-bit against its known plaintext — a
//! load test that does not verify results would happily report a
//! fast wrong server.
//!
//! Modes:
//!
//! ```text
//! cargo run --release --example batch_server              # full sweep, writes BENCH_serving.json
//! cargo run --release --example batch_server -- --quick   # CI smoke: small key, short points, no JSON
//! cargo run --release --example batch_server -- --quick --faults
//!                                                         # fault-injection smoke: panics, stalls,
//!                                                         # queue-full storms under live traffic
//! cargo run --release --example batch_server -- --quick --verify
//!                                                         # integrity smoke: measures the Off-vs-Full
//!                                                         # verify-before-release tax and proves an
//!                                                         # injected corruption is corrected in-flight
//! cargo run --release --example batch_server -- --quick --hardened
//!                                                         # constant-time smoke: measures the
//!                                                         # Off-vs-Hardened serving tax and proves the
//!                                                         # blinded hardened path stays bit-exact
//! ```
//!
//! The full (non-`--quick`) sweep also measures the
//! verify-before-release tax (`VerifyPolicy::Full` vs `Off` CRT
//! throughput at the headline 1024-bit size) and records it in
//! `BENCH_serving.json` under `"verify"`.
//!
//! The full sweep uses 1024-bit keys (the paper's headline RSA size)
//! and sweeps offered load from well below to well above measured
//! capacity, so the saturation knee and the overload behavior
//! (typed `Overloaded` refusals, not collapse) are both visible in
//! the emitted `BENCH_serving.json`.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::cios52::Cios52Kernel;
use montgomery_systolic::core::verify::faults::CorruptionPlan;
use montgomery_systolic::core::verify::{Quarantine, VerifyPolicy};
use montgomery_systolic::core::{EngineConfig, EngineKind, HardeningMode, MmmError};
use montgomery_systolic::rsa::{BatchOp, KeyId, KeyedSession, RsaKeyPair, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured (backend, offered-rate) point of the sweep.
struct PointResult {
    offered_ops_s: f64,
    achieved_ops_s: f64,
    p50_us: f64,
    p99_us: f64,
    submitted: usize,
    dropped_overload: usize,
    errored: usize,
}

struct SweepRow {
    backend: &'static str,
    point: PointResult,
}

fn main() -> Result<(), MmmError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let faults = args.iter().any(|a| a == "--faults");
    let verify = args.iter().any(|a| a == "--verify");
    let hardened = args.iter().any(|a| a == "--hardened");
    if faults {
        return fault_smoke();
    }
    if verify {
        return verify_smoke(quick);
    }
    if hardened {
        return hardened_smoke(quick);
    }
    sweep(quick)
}

/// Seeded (plaintext, ciphertext) pairs under `key`.
fn traffic(key: &RsaKeyPair, seed: u64, count: usize) -> Vec<(Ubig, Ubig)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let m = Ubig::random_below(&mut rng, &key.n);
            let c = m.modpow(&key.e, &key.n);
            (m, c)
        })
        .collect()
}

fn percentile(sorted_us: &[f64], p: usize) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    sorted_us[(sorted_us.len() * p / 100).min(sorted_us.len() - 1)]
}

/// Paces `n ≈ rate × duration` arrivals at `rate` ops/s into the
/// server, then waits out every ticket and reduces to a point.
fn run_point(
    server: &Server,
    id: KeyId,
    pool: &[(Ubig, Ubig)],
    rate: f64,
    duration: Duration,
) -> Result<PointResult, MmmError> {
    let n = ((rate * duration.as_secs_f64()) as usize).clamp(16, 2000);
    let start = Instant::now();
    let mut pending = Vec::with_capacity(n);
    let mut dropped_overload = 0usize;
    for i in 0..n {
        let due = start + Duration::from_secs_f64(i as f64 / rate);
        if let Some(remaining) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(remaining);
        }
        let (m, c) = &pool[i % pool.len()];
        let submitted_at = Instant::now();
        match server.try_submit(id, BatchOp::DecryptCrt, c.clone()) {
            Ok(ticket) => pending.push((ticket, submitted_at, m)),
            // An open-loop generator drops on backpressure and keeps
            // pacing — that is the saturation signal, not a failure.
            Err(MmmError::Overloaded { .. }) => dropped_overload += 1,
            Err(e) => return Err(e),
        }
    }
    let submitted = pending.len();
    let mut latencies_us = Vec::with_capacity(submitted);
    let mut errored = 0usize;
    let mut last_resolve = start;
    for (ticket, submitted_at, want) in pending {
        let (result, resolved_at) = ticket.wait_timed();
        match result {
            Ok(got) => {
                assert_eq!(&got, want, "served response must match the plaintext");
                latencies_us.push(resolved_at.duration_since(submitted_at).as_secs_f64() * 1e6);
                last_resolve = last_resolve.max(resolved_at);
            }
            Err(_) => errored += 1,
        }
    }
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Achieved throughput over submit-to-last-resolve, so the drain
    // tail of a saturated point counts against it.
    let wall = last_resolve.duration_since(start).as_secs_f64().max(1e-9);
    Ok(PointResult {
        offered_ops_s: rate,
        achieved_ops_s: latencies_us.len() as f64 / wall,
        p50_us: percentile(&latencies_us, 50),
        p99_us: percentile(&latencies_us, 99),
        submitted,
        dropped_overload,
        errored,
    })
}

/// CRT-decrypt throughput (ops/s) of one warm session over a full
/// shard: best of `rounds` interleavable timing rounds of `reps`
/// passes each. Callers interleave rounds across sessions so that
/// background-load drift on a shared host hits every policy equally
/// instead of skewing the ratio; best-of keeps the least-disturbed
/// round, a lower bound on the true cost.
fn crt_round_ops_s(session: &KeyedSession, shard: &[Ubig], reps: usize) -> Result<f64, MmmError> {
    let t0 = Instant::now();
    for _ in 0..reps {
        session.decrypt_crt(shard)?;
    }
    Ok((shard.len() * reps) as f64 / t0.elapsed().as_secs_f64())
}

/// The measured cost of each verification tier (CRT decrypt ops/s
/// and % throughput lost vs `Off`).
struct VerifyTax {
    off_ops: f64,
    /// `VerifyPolicy::sampled()`: the verify-before-release
    /// re-encryption check on every lane plus 1-in-64 residue
    /// sampling — the production posture the ≤15% target applies to.
    sampled_ops: f64,
    sampled_tax_pct: f64,
    /// `VerifyPolicy::Full`: additionally shadow-checks **every**
    /// Montgomery multiplication (~4 extra bigint muls each) — the
    /// belt-and-braces mode, deliberately expensive.
    full_ops: f64,
    full_tax_pct: f64,
}

/// Measures the verification tax: CRT throughput under
/// `VerifyPolicy::Off` vs `sampled()` vs `Full` on the same
/// key/backend.
fn verify_tax(
    key: &RsaKeyPair,
    base: &EngineConfig,
    pool: &[(Ubig, Ubig)],
    reps: usize,
) -> Result<VerifyTax, MmmError> {
    let shard: Vec<Ubig> = pool
        .iter()
        .cycle()
        .take(base.shard_lanes())
        .map(|(_, c)| c.clone())
        .collect();
    let session = |policy| {
        KeyedSession::new(
            key.clone(),
            base.clone()
                .with_verify(policy)
                .with_quarantine(Arc::new(Quarantine::new())),
        )
    };
    let sessions = [
        session(VerifyPolicy::Off)?,
        session(VerifyPolicy::sampled())?,
        session(VerifyPolicy::Full)?,
    ];
    let mut best = [0.0f64; 3];
    for s in &sessions {
        s.decrypt_crt(&shard)?; // warm the pool
    }
    const ROUNDS: usize = 4;
    for _ in 0..ROUNDS {
        for (i, s) in sessions.iter().enumerate() {
            best[i] = best[i].max(crt_round_ops_s(s, &shard, reps)?);
        }
    }
    let [off_ops, sampled_ops, full_ops] = best;
    Ok(VerifyTax {
        off_ops,
        sampled_ops,
        sampled_tax_pct: (1.0 - sampled_ops / off_ops) * 100.0,
        full_ops,
        full_tax_pct: (1.0 - full_ops / off_ops) * 100.0,
    })
}

/// The measured cost of the constant-time serving mode: CRT decrypt
/// ops/s, `HardeningMode::Off` vs `Hardened` (constant-time scans,
/// canonicalizing engines, message + exponent blinding) on the same
/// key/backend.
struct HardeningTax {
    off_ops: f64,
    hardened_ops: f64,
    tax_pct: f64,
}

/// Measures the hardening tax with the same interleaved best-of-round
/// discipline as [`verify_tax`], so host drift hits both modes
/// equally.
fn hardening_tax(
    key: &RsaKeyPair,
    base: &EngineConfig,
    pool: &[(Ubig, Ubig)],
    reps: usize,
) -> Result<HardeningTax, MmmError> {
    let shard: Vec<Ubig> = pool
        .iter()
        .cycle()
        .take(base.shard_lanes())
        .map(|(_, c)| c.clone())
        .collect();
    let sessions = [
        KeyedSession::new(key.clone(), base.clone().with_hardening(HardeningMode::Off))?,
        KeyedSession::new(
            key.clone(),
            base.clone().with_hardening(HardeningMode::Hardened),
        )?,
    ];
    for s in &sessions {
        s.decrypt_crt(&shard)?; // warm the pool
    }
    let mut best = [0.0f64; 2];
    const ROUNDS: usize = 4;
    for _ in 0..ROUNDS {
        for (i, s) in sessions.iter().enumerate() {
            best[i] = best[i].max(crt_round_ops_s(s, &shard, reps)?);
        }
    }
    let [off_ops, hardened_ops] = best;
    Ok(HardeningTax {
        off_ops,
        hardened_ops,
        tax_pct: (1.0 - hardened_ops / off_ops) * 100.0,
    })
}

/// The CI hardened-mode smoke (`--hardened`): measures the
/// Off-vs-Hardened serving tax, then drives live traffic through a
/// fully hardened [`Server`] (constant-time scans + blinding on every
/// flush) asserting bit-exact responses — the constant-time schedule
/// must be invisible in the results.
fn hardened_smoke(quick: bool) -> Result<(), MmmError> {
    let bits = if quick { 256 } else { 1024 };
    let mut rng = StdRng::seed_from_u64(0xC7C7);
    println!("hardened smoke: generating a {bits}-bit RSA key...");
    let key = RsaKeyPair::generate(&mut rng, bits, 16);
    let pool = traffic(&key, 0xC7C8, 64);
    let base = EngineConfig::default();
    let reps = if quick { 2 } else { 3 };
    let tax = hardening_tax(&key, &base, &pool, reps)?;
    println!(
        "hardening tax (l={bits}, backend {}): off {:.0} ops/s, hardened {:.0} ops/s ({:.1}%)",
        base.backend().name(),
        tax.off_ops,
        tax.hardened_ops,
        tax.tax_pct
    );

    let config = base
        .with_hardening(HardeningMode::Hardened)
        .with_flush_deadline(Duration::from_millis(1));
    let mut builder = Server::builder(config);
    let id = builder.add_key(key.clone())?;
    let server = builder.build()?;
    let requests = traffic(&key, 0xC7C9, 24);
    let mut admitted = Vec::new();
    for (m, c) in &requests {
        admitted.push((
            server.submit(id, BatchOp::DecryptCrt, c.clone(), Duration::from_secs(30))?,
            m,
        ));
    }
    for (ticket, m) in admitted {
        assert_eq!(&ticket.wait()?, m, "hardened serving must stay bit-exact");
    }
    let stats = server.stats();
    println!(
        "hardened smoke: contract held — {} served bit-exact through the blinded \
         constant-time path",
        stats.completed_ok
    );
    server.shutdown();
    Ok(())
}

fn sweep(quick: bool) -> Result<(), MmmError> {
    let (bits, point_secs, rate_mults): (usize, f64, &[f64]) = if quick {
        (256, 0.25, &[0.5, 1.5])
    } else {
        (1024, 1.2, &[0.25, 0.5, 1.0, 2.0])
    };
    let mut rng = StdRng::seed_from_u64(0x5E4E4);
    println!("generating a {bits}-bit RSA key...");
    let key = RsaKeyPair::generate(&mut rng, bits, 16);
    let pool = traffic(&key, 0xA11CE, 128);
    let base = EngineConfig::default();
    let workers = base.workers();
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "serving sweep: l={bits}, {workers} worker(s) on {host} host core(s), \
         flush deadline {:?}, queue bound {}, shard width {} lanes, cios52 kernel {}",
        base.flush_deadline(),
        base.queue_bound(),
        base.shard_lanes(),
        Cios52Kernel::active().name()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10} {:>8} {:>8} {:>6}",
        "backend", "offered/s", "achieved/s", "p50 us", "p99 us", "sent", "dropped", "err"
    );

    let mut rows: Vec<SweepRow> = Vec::new();
    for kind in EngineKind::ALL {
        let config = base.clone().with_backend(kind);
        // Capacity probe: one warm full-shard flush through the same
        // session machinery the server uses; the sweep brackets it.
        let capacity = {
            let session = montgomery_systolic::rsa::KeyedSession::new(key.clone(), config.clone())?;
            let shard: Vec<Ubig> = pool
                .iter()
                .cycle()
                .take(config.shard_lanes())
                .map(|(_, c)| c.clone())
                .collect();
            session.decrypt_crt(&shard)?; // warm the pool
            let t0 = Instant::now();
            session.decrypt_crt(&shard)?;
            shard.len() as f64 / t0.elapsed().as_secs_f64()
        };
        for &mult in rate_mults {
            let rate = (capacity * mult).max(8.0);
            let mut builder = Server::builder(config.clone());
            let id = builder.add_key(key.clone())?;
            let server = builder.build()?;
            let point = run_point(
                &server,
                id,
                &pool,
                rate,
                Duration::from_secs_f64(point_secs),
            )?;
            server.shutdown();
            println!(
                "{:>10} {:>12.0} {:>12.0} {:>10.0} {:>10.0} {:>8} {:>8} {:>6}",
                kind.name(),
                point.offered_ops_s,
                point.achieved_ops_s,
                point.p50_us,
                point.p99_us,
                point.submitted,
                point.dropped_overload,
                point.errored
            );
            rows.push(SweepRow {
                backend: kind.name(),
                point,
            });
        }
    }

    if quick {
        println!("\nquick mode: smoke run only, BENCH_serving.json not written");
        return Ok(());
    }

    // The verification tax at the headline size, on the default
    // backend — the numbers DESIGN.md §11's cost table quotes.
    let tax = verify_tax(&key, &base, &pool, 3)?;
    // And the constant-time hardening tax — DESIGN.md §12 / README.
    let htax = hardening_tax(&key, &base, &pool, 3)?;
    println!(
        "\nhardening tax (l={bits}, backend {}): off {:.0} ops/s, hardened {:.0} ops/s ({:.1}%)",
        base.backend().name(),
        htax.off_ops,
        htax.hardened_ops,
        htax.tax_pct
    );
    println!(
        "\nverification tax (l={bits}, backend {}): off {:.0} ops/s, \
         verify-before-release {:.0} ops/s ({:.1}%), full {:.0} ops/s ({:.1}%)",
        base.backend().name(),
        tax.off_ops,
        tax.sampled_ops,
        tax.sampled_tax_pct,
        tax.full_ops,
        tax.full_tax_pct
    );

    let saturation = rows
        .iter()
        .map(|r| r.point.achieved_ops_s)
        .fold(0.0f64, f64::max);
    // Hand-rolled JSON (no serde in the sanctioned dependency set).
    let mut json = String::from("{\n  \"bench\": \"serving_load_sweep\",\n");
    json.push_str(&format!(
        "  \"l\": {bits},\n  \"workers\": {workers},\n  \"host_parallelism\": {host},\n  \
         \"flush_deadline_ms\": {:.3},\n  \"queue_bound\": {},\n  \"shard_lanes\": {},\n  \
         \"cios52_kernel\": \"{}\",\n  \"saturation_ops_s\": {:.0},\n  \
         \"note\": \"open-loop paced arrivals, CRT decrypt; every response verified against its \
         plaintext; measured on a {host}-core host, so saturation is the single-core batch-engine \
         ceiling — higher regimes require the worker/core scaling recorded above\",\n  \"rows\": [\n",
        base.flush_deadline().as_secs_f64() * 1e3,
        base.queue_bound(),
        base.shard_lanes(),
        Cios52Kernel::active().name(),
        saturation,
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"offered_ops_s\": {:.0}, \"achieved_ops_s\": {:.0}, \
             \"p50_us\": {:.0}, \"p99_us\": {:.0}, \"submitted\": {}, \"dropped_overload\": {}, \
             \"errored\": {}}}{}\n",
            r.backend,
            r.point.offered_ops_s,
            r.point.achieved_ops_s,
            r.point.p50_us,
            r.point.p99_us,
            r.point.submitted,
            r.point.dropped_overload,
            r.point.errored,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"verify\": {{\"backend\": \"{}\", \"crt_off_ops_s\": {:.0}, \
         \"crt_sampled_ops_s\": {:.0}, \"sampled_tax_pct\": {:.1}, \
         \"crt_full_ops_s\": {:.0}, \"full_tax_pct\": {:.1}}},\n",
        base.backend().name(),
        tax.off_ops,
        tax.sampled_ops,
        tax.sampled_tax_pct,
        tax.full_ops,
        tax.full_tax_pct
    ));
    json.push_str(&format!(
        "  \"hardening\": {{\"backend\": \"{}\", \"crt_off_ops_s\": {:.0}, \
         \"crt_hardened_ops_s\": {:.0}, \"hardened_tax_pct\": {:.1}}}\n}}\n",
        base.backend().name(),
        htax.off_ops,
        htax.hardened_ops,
        htax.tax_pct
    ));
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("\nwrote BENCH_serving.json (saturation {saturation:.0} ops/s on this host)");
    Ok(())
}

/// The CI integrity smoke (`--verify`): measures the Off-vs-Full
/// verify-before-release tax, then proves the serving path corrects
/// an injected CRT-half corruption in flight — every response
/// bit-exact, the detection visible in [`Server::stats`].
fn verify_smoke(quick: bool) -> Result<(), MmmError> {
    let bits = if quick { 256 } else { 1024 };
    let mut rng = StdRng::seed_from_u64(0x1F7E6);
    println!("verify smoke: generating a {bits}-bit RSA key...");
    let key = RsaKeyPair::generate(&mut rng, bits, 16);
    let pool = traffic(&key, 0x1F7E7, 64);
    let base = EngineConfig::default();
    let reps = if quick { 2 } else { 3 };
    let tax = verify_tax(&key, &base, &pool, reps)?;
    println!(
        "verification tax (l={bits}, backend {}): off {:.0} ops/s, \
         verify-before-release {:.0} ops/s ({:.1}%), full {:.0} ops/s ({:.1}%)",
        base.backend().name(),
        tax.off_ops,
        tax.sampled_ops,
        tax.sampled_tax_pct,
        tax.full_ops,
        tax.full_tax_pct
    );

    // Corruption drill through the full serving path: a private fault
    // plan armed for one CRT-half bit flip, a private quarantine so
    // the drill never benches a backend process-wide.
    let faults = Arc::new(CorruptionPlan::default());
    let config = base
        .with_verify(VerifyPolicy::Full)
        .with_faults(Arc::clone(&faults))
        .with_quarantine(Arc::new(Quarantine::new()))
        .with_flush_deadline(Duration::from_millis(1));
    let mut builder = Server::builder(config);
    let id = builder.add_key(key.clone())?;
    let server = builder.build()?;
    faults.inject_crt_half_fault(2, 11, 1);
    let requests = traffic(&key, 0x1F7E8, 16);
    let mut admitted = Vec::new();
    for (m, c) in &requests {
        admitted.push((
            server.submit(id, BatchOp::DecryptCrt, c.clone(), Duration::from_secs(30))?,
            m,
        ));
    }
    for (ticket, m) in admitted {
        let got = ticket.wait()?;
        assert_eq!(&got, m, "a corrupted lane must never reach a client");
    }
    assert_eq!(faults.half_faults_fired(), 1, "the injection fired");
    let stats = server.stats();
    assert!(
        stats.integrity_violations >= 1 && stats.integrity_corrected >= 1,
        "detection and correction must be visible in ServeStats: {stats:?}"
    );
    println!(
        "verify smoke: contract held — {} served exact, {} violation(s) detected, \
         {} corrected in flight, {} backend(s) quarantined",
        stats.completed_ok,
        stats.integrity_violations,
        stats.integrity_corrected,
        stats.backends_quarantined
    );
    server.shutdown();
    Ok(())
}

/// The CI fault-injection smoke: all three injection shapes armed
/// against live traffic, asserting the serving contract — typed
/// errors, bit-exact successes, nothing lost — then clean recovery.
fn fault_smoke() -> Result<(), MmmError> {
    // Injected panics are the point of this mode; keep the default
    // hook's backtraces for *real* panics but silence the injected
    // marker so the CI log stays readable.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected worker panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let mut rng = StdRng::seed_from_u64(0xFA17);
    println!("fault smoke: generating a 256-bit RSA key...");
    let key = RsaKeyPair::generate(&mut rng, 256, 16);
    let config = EngineConfig::default().with_flush_deadline(Duration::from_millis(1));
    let mut builder = Server::builder(config);
    let id = builder.add_key(key.clone())?;
    let server = builder.build()?;

    server.faults().inject_flush_panics(2);
    server
        .faults()
        .inject_flush_stalls(Duration::from_millis(5), 2);
    server.faults().inject_queue_full(4);

    let requests = traffic(&key, 0xFA2, 32);
    let (mut ok, mut panicked, mut refused) = (0usize, 0usize, 0usize);
    // Waves with a barrier between them force separate flushes, so
    // both armed panics actually fire against distinct shards.
    for (w, wave) in requests.chunks(8).enumerate() {
        let mut admitted = Vec::new();
        for (i, (m, c)) in wave.iter().enumerate() {
            let submitted = if (w + i) % 2 == 0 {
                server.try_submit(id, BatchOp::DecryptCrt, c.clone())
            } else {
                server.submit(id, BatchOp::DecryptCrt, c.clone(), Duration::from_secs(30))
            };
            match submitted {
                Ok(ticket) => admitted.push((ticket, m)),
                Err(MmmError::Overloaded { .. }) => refused += 1,
                Err(e) => return Err(e),
            }
        }
        for (ticket, m) in admitted {
            match ticket.wait() {
                Ok(got) => {
                    assert_eq!(&got, m, "a fault must never corrupt a response");
                    ok += 1;
                }
                Err(MmmError::WorkerPanicked) => panicked += 1,
                Err(e) => return Err(e),
            }
        }
    }
    assert_eq!(ok + panicked + refused, requests.len(), "nothing lost");
    assert_eq!(server.faults().panics_fired(), 2, "both panics fired");
    assert_eq!(server.faults().fulls_fired(), 4, "full storm fired");

    // Bad input still bounces as a typed refusal, mid-recovery.
    match server.try_submit(id, BatchOp::DecryptCrt, key.n.clone()) {
        Err(MmmError::OperandOutOfRange { .. }) => {}
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    // And the server has fully recovered: fresh traffic is exact.
    for (m, c) in traffic(&key, 0xFA3, 4) {
        let ticket = server.try_submit(id, BatchOp::DecryptCrt, c)?;
        assert_eq!(ticket.wait(), Ok(m), "post-fault traffic is exact");
    }
    let stats = server.stats();
    println!(
        "fault smoke: contract held — {ok} ok, {panicked} worker-panicked (typed), \
         {refused} refused (typed), 0 lost, 0 wrong; {} worker restart(s), \
         {} caught flush panic(s)",
        stats.worker_restarts, stats.flush_panics
    );
    server.shutdown();
    Ok(())
}

//! A guided walk through the paper's architecture: traces the ASM
//! controller state-by-state for one multiplication (Fig. 4) and then
//! the square-and-multiply schedule of a full exponentiation
//! (Algorithm 3), with cycle accounting at each step.
//!
//! ```sh
//! cargo run --example exponentiation_trace
//! ```

use montgomery_systolic::core::montgomery::MontgomeryParams;
use montgomery_systolic::core::wave::WaveMmmc;
use montgomery_systolic::core::{controller, cost, Mmmc, MontMul};
use montgomery_systolic::hdl::{CarryStyle, Netlist, Simulator};
use montgomery_systolic::Ubig;

fn main() {
    trace_one_multiplication();
    trace_exponentiation();
}

/// Runs the controller at l = 4 and prints the state sequence.
fn trace_one_multiplication() {
    let l = 4;
    println!("=== ASM trace of one multiplication (l = {l}) ===");
    let mut nl = Netlist::new();
    let start = nl.input("start");
    let sig = controller::build_into(&mut nl, l, start);
    let mut sim = Simulator::new(&nl).unwrap();

    sim.set(start, true);
    let mut names = Vec::new();
    for cycle in 0..(3 * l + 6) {
        sim.settle();
        let (s1, s0) = (sim.get(sig.state.0), sim.get(sig.state.1));
        let state = match (s1, s0) {
            (false, false) => "IDLE",
            (false, true) => "MUL1",
            (true, false) => "MUL2",
            (true, true) => "OUT ",
        };
        let marks = format!(
            "{}{}{}{}",
            if sim.get(sig.load) { " load" } else { "" },
            if sim.get(sig.valid) {
                " inject-wave"
            } else {
                ""
            },
            if sim.get(sig.shift_x) { " shift-X" } else { "" },
            if sim.get(sig.done) { " DONE" } else { "" },
        );
        println!("cycle {cycle:2}: {state}{marks}");
        names.push(state);
        sim.step();
        sim.set(start, false);
    }
    println!("latency: 3l+4 = {} cycles from START to DONE\n", 3 * l + 4);
    // The MMMC wraps exactly this controller:
    let mmmc = Mmmc::build(l, CarryStyle::XorMux);
    assert_eq!(mmmc.expected_cycles(), (3 * l + 4) as u64);
}

/// Prints Algorithm 3's schedule for a small exponentiation.
fn trace_exponentiation() {
    let n = Ubig::from(40487u64);
    let params = MontgomeryParams::hardware_safe(&n);
    let l = params.l();
    let m = Ubig::from(1234u64);
    let e = Ubig::from(0b101101u64); // 45
    println!("=== Algorithm 3 schedule: {m}^{e} mod {n} (l = {l}) ===");

    let mut engine = WaveMmmc::new(params.clone());
    let r2 = params.r2_mod_n();
    let mbar = engine.mont_mul(&m, &r2);
    println!(
        "pre:  M̄ = Mont(M, R² mod N) = {mbar}   [3l+4 = {} cycles]",
        3 * l + 4
    );

    let t = e.bit_len();
    let mut a = mbar.clone();
    for i in (0..t - 1).rev() {
        a = engine.mont_mul(&a, &a);
        print!("bit {i} (e_{i} = {}): square -> {a}", u8::from(e.bit(i)));
        if e.bit(i) {
            a = engine.mont_mul(&a, &mbar);
            print!(", multiply -> {a}");
        }
        println!();
    }
    let result = engine.mont_mul(&a, &Ubig::one());
    println!("post: Mont(A, 1) = {result}");
    assert_eq!(result.rem(&n), m.modpow(&e, &n));

    let total = engine.consumed_cycles().unwrap();
    let (lo, hi) = cost::modexp_bounds(l);
    println!(
        "total simulated cycles: {total}; paper accounting {}; Eq. 10 bounds [{lo}, {hi}]",
        cost::modexp_cycles_for_exponent(l, &e)
    );
}

//! ECC point multiplication over GF(p) — the paper's stated future
//! work (§5) — with every field multiplication routed through the
//! cycle-accurate Montgomery engine, so the example also reports the
//! hardware cycle budget of a scalar multiplication. Then the same
//! workload as the batch engines serve it: a P-256 `CurveSession`
//! verifying an RFC 6979 test-vector signature 64 lanes at a time.
//!
//! ```sh
//! cargo run --release --example ecc_point_mul
//! ```

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::montgomery::MontgomeryParams;
use montgomery_systolic::core::wave::WaveMmmc;
use montgomery_systolic::core::EngineConfig;
use montgomery_systolic::ecc::curves::p256;
use montgomery_systolic::ecc::serve::{CurveSession, EcdsaRequest};
use montgomery_systolic::ecc::{Curve, FieldCtx};

fn main() {
    // A 61-bit prime field (fits the demo; the architecture is
    // width-generic). p = 2^61 - 1 is the Mersenne prime M61.
    let p = Ubig::pow2(61) - Ubig::one();
    let params = MontgomeryParams::hardware_safe(&p);
    println!(
        "field GF(p), p = {p} ({} bits) -> datapath width l = {}",
        p.bit_len(),
        params.l()
    );

    // Field arithmetic on the cycle-accurate wave engine.
    let mut f = FieldCtx::new(WaveMmmc::new(params));

    // y² = x³ + 2x + 3: lift the first x that lands on the curve.
    let curve = Curve::new(&mut f, &Ubig::from(2u64), &Ubig::from(3u64));
    let g = (1u64..)
        .find_map(|x| curve.lift_x(&mut f, &Ubig::from(x)))
        .expect("some small x lifts");
    let (gx, gy) = curve.to_affine(&mut f, &g).unwrap();
    println!("base point G = ({gx}, {gy})");

    let cycles_before = f.consumed_cycles().unwrap();
    let k = Ubig::from(0xDEAD_BEEF_CAFEu64);
    let kg = curve.scalar_mul(&mut f, &k, &g);
    let (x, y) = curve.to_affine(&mut f, &kg).expect("not the identity");
    let cycles = f.consumed_cycles().unwrap() - cycles_before;
    println!("[k]G for k = {k}:");
    println!("  = ({x}, {y})");
    println!("simulated hardware cycles for the scalar multiplication: {cycles}");

    // Sanity: the group law. [k]G + G = [k+1]G.
    let kg1 = curve.add(&mut f, &kg, &g);
    let direct = curve.scalar_mul(&mut f, &(&k + &Ubig::one()), &g);
    assert_eq!(
        curve.to_affine(&mut f, &kg1),
        curve.to_affine(&mut f, &direct),
        "group law"
    );
    assert!(curve.contains(&mut f, &kg), "result stays on the curve");
    println!("group-law check [k]G + G = [k+1]G ✓");

    // The serving shape (DESIGN.md §13): the same curve arithmetic,
    // 64 lanes wide on the batch engines. Verify the RFC 6979 §A.2.5
    // P-256/SHA-256 "sample" signature across a full shard.
    let session = CurveSession::new(p256(), EngineConfig::from_env().expect("clean MMM_* env"))
        .expect("P-256 session");
    let hex = |s: &str| Ubig::from_hex(s).unwrap();
    let req = EcdsaRequest {
        z: hex("AF2BDBE1AA9B6EC1E2ADE1D694F41FC71A831D0268E9891562113D8A62ADD1BF"),
        r: hex("EFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716"),
        s: hex("F7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8"),
        qx: hex("60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6"),
        qy: hex("7903FE1008B8BC99A41AE9E95628BC64F2F1B20C2D7E9F5177A3C294D4462299"),
    };
    let mut forged = req.clone();
    forged.s = forged.s.modadd(&Ubig::one(), &session.spec().order);
    let mut batch = vec![req; 63];
    batch.push(forged);
    let verdicts = session.verify_ecdsa(&batch).expect("well-formed requests");
    assert!(
        verdicts[..63].iter().all(|&v| v),
        "genuine signature verifies"
    );
    assert!(!verdicts[63], "forged signature rejected");
    println!(
        "batched ECDSA (P-256, {} backend): 63 genuine + 1 forged verified in one 64-lane shard ✓",
        session.backend().name()
    );
}

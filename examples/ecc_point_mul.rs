//! ECC point multiplication over GF(p) — the paper's stated future
//! work (§5) — with every field multiplication routed through the
//! cycle-accurate Montgomery engine, so the example also reports the
//! hardware cycle budget of a scalar multiplication.
//!
//! ```sh
//! cargo run --release --example ecc_point_mul
//! ```

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::montgomery::MontgomeryParams;
use montgomery_systolic::core::wave::WaveMmmc;
use montgomery_systolic::ecc::{Curve, FieldCtx};

fn main() {
    // A 61-bit prime field (fits the demo; the architecture is
    // width-generic). p = 2^61 - 1 is the Mersenne prime M61.
    let p = Ubig::pow2(61) - Ubig::one();
    let params = MontgomeryParams::hardware_safe(&p);
    println!(
        "field GF(p), p = {p} ({} bits) -> datapath width l = {}",
        p.bit_len(),
        params.l()
    );

    // Field arithmetic on the cycle-accurate wave engine.
    let mut f = FieldCtx::new(WaveMmmc::new(params));

    // y² = x³ + 2x + 3: lift the first x that lands on the curve.
    let curve = Curve::new(&mut f, &Ubig::from(2u64), &Ubig::from(3u64));
    let g = (1u64..)
        .find_map(|x| curve.lift_x(&mut f, &Ubig::from(x)))
        .expect("some small x lifts");
    let (gx, gy) = curve.to_affine(&mut f, &g).unwrap();
    println!("base point G = ({gx}, {gy})");

    let cycles_before = f.consumed_cycles().unwrap();
    let k = Ubig::from(0xDEAD_BEEF_CAFEu64);
    let kg = curve.scalar_mul(&mut f, &k, &g);
    let (x, y) = curve.to_affine(&mut f, &kg).expect("not the identity");
    let cycles = f.consumed_cycles().unwrap() - cycles_before;
    println!("[k]G for k = {k}:");
    println!("  = ({x}, {y})");
    println!("simulated hardware cycles for the scalar multiplication: {cycles}");

    // Sanity: the group law. [k]G + G = [k+1]G.
    let kg1 = curve.add(&mut f, &kg, &g);
    let direct = curve.scalar_mul(&mut f, &(&k + &Ubig::one()), &g);
    assert_eq!(
        curve.to_affine(&mut f, &kg1),
        curve.to_affine(&mut f, &direct),
        "group law"
    );
    assert!(curve.contains(&mut f, &kg), "result stays on the curve");
    println!("group-law check [k]G + G = [k+1]G ✓");
}

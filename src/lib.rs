//! # montgomery-systolic
//!
//! Facade crate for the full-system Rust reproduction of
//! Örs, Batina, Preneel, Vandewalle, *"Hardware Implementation of a
//! Montgomery Modular Multiplier in a Systolic Array"* (IPDPS 2003
//! workshops).
//!
//! The workspace implements, from scratch:
//!
//! * [`bigint`] — arbitrary-precision unsigned integers (the oracle
//!   layer),
//! * [`hdl`] — a gate-level netlist representation and cycle-accurate
//!   simulator (the "FPGA" substrate),
//! * [`fpga`] — a Xilinx Virtex-E technology model (LUT covering,
//!   slice packing, timing),
//! * [`core`] — the paper's contribution: the systolic array cells
//!   (Fig. 1), the linear array (Fig. 2), the Montgomery Modular
//!   Multiplication Circuit with its ASM controller (Figs. 3–4), the
//!   modular exponentiator (Alg. 3), and the 64-lane bit-sliced batch
//!   engine (`core::batch`) with its batched exponentiator,
//! * [`baselines`] — the comparison designs (Blum–Paar-style
//!   `R = 2^{l+3}` multiplier, naive interleaved modular
//!   multiplication, high-radix iteration models),
//! * [`rsa`] and [`ecc`] — the two public-key applications the paper
//!   targets, including batched many-client sign/verify and the typed
//!   serving API (`rsa::server`: fallible `KeyedSession` +
//!   `BatchCollector` request aggregation, configured through
//!   `core::config::EngineConfig`).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results. Start with `examples/quickstart.rs`.
//!
//! ```
//! use montgomery_systolic::core::montgomery::MontgomeryParams;
//! use montgomery_systolic::core::traits::SoftwareEngine;
//! use montgomery_systolic::core::{ModExp, MontMul};
//! use montgomery_systolic::Ubig;
//!
//! // 97^(2^16+1) mod 40487 via the paper's Algorithm 3.
//! let n = Ubig::from(40487u64);
//! let params = MontgomeryParams::hardware_safe(&n);
//! let mut me = ModExp::new(SoftwareEngine::new(params));
//! let c = me.modexp(&Ubig::from(97u64), &Ubig::from(65537u64));
//! assert_eq!(c, Ubig::from(97u64).modpow(&Ubig::from(65537u64), &n));
//! ```

#![forbid(unsafe_code)]

pub use mmm_baselines as baselines;
pub use mmm_bigint as bigint;
pub use mmm_core as core;
pub use mmm_ecc as ecc;
pub use mmm_fpga as fpga;
pub use mmm_hdl as hdl;
pub use mmm_rsa as rsa;

pub use mmm_bigint::Ubig;

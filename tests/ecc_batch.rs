//! Batched ECC vs the solo oracle: every lane of the 64-lane batch
//! layer must be **bit-identical** (at affine coordinates, which are
//! unique reduced representatives) to the solo `curve.rs` path on the
//! same inputs — across every backend, at word-boundary field widths,
//! and for partial batches.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::engine::EngineKind;
use montgomery_systolic::core::montgomery::MontgomeryParams;
use montgomery_systolic::core::traits::{BatchMontMul, SoftwareEngine};
use montgomery_systolic::core::{HardeningMode, MmmError};
use montgomery_systolic::ecc::batch_curve::{BatchCurve, PointLanes};
use montgomery_systolic::ecc::batch_field::BatchFieldCtx;
use montgomery_systolic::ecc::curve::{Curve, Point};
use montgomery_systolic::ecc::curves::p256;
use montgomery_systolic::ecc::field::FieldCtx;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The word-boundary test primes: NIST P-256's field prime (256-bit),
/// 2²⁵⁵ − 19 (255-bit, one under the limb boundary) and a 257-bit
/// prime (one over).
fn boundary_primes() -> Vec<(&'static str, Ubig)> {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let p255 = Ubig::pow2(255) - Ubig::from(19u64);
    assert!(p255.is_probable_prime(&mut rng, 16));
    // Smallest prime above 2²⁵⁶ (so bit_len = 257): search odd offsets.
    let mut p257 = Ubig::pow2(256) + Ubig::one();
    while !p257.is_probable_prime(&mut rng, 16) {
        p257 = p257 + Ubig::from(2u64);
    }
    assert_eq!(p257.bit_len(), 257);
    vec![("p256", p256().p), ("2^255-19", p255), ("257-bit", p257)]
}

/// Builds a solo context + curve + point over `p`, choosing small
/// coefficients and lifting the first x with a quadratic residue.
fn solo_fixture(p: &Ubig) -> (FieldCtx<SoftwareEngine>, Curve, Point) {
    let params = MontgomeryParams::hardware_safe(p);
    let mut f = FieldCtx::new(SoftwareEngine::new(params));
    let curve = Curve::try_new(&mut f, &Ubig::from(5u64), &Ubig::from(7u64))
        .expect("a=5, b=7 is non-singular for the test primes");
    let g = (2u64..)
        .find_map(|x| curve.lift_x(&mut f, &Ubig::from(x)))
        .expect("some small x lies on the curve");
    (f, curve, g)
}

/// Batch context for `p` on `kind`.
fn batch_fixture(
    p: &Ubig,
    kind: EngineKind,
) -> (
    BatchFieldCtx<montgomery_systolic::core::engine::AnyBatchEngine>,
    BatchCurve,
) {
    let params = MontgomeryParams::hardware_safe(p);
    let mut f = BatchFieldCtx::new(kind.build(params));
    let curve = BatchCurve::try_new(&mut f, &Ubig::from(5u64), &Ubig::from(7u64)).unwrap();
    (f, curve)
}

/// Affine output of the batched scalar mult for `ks` over splat(g).
fn batch_affine(p: &Ubig, kind: EngineKind, g: &Point, ks: &[Ubig]) -> Vec<Option<(Ubig, Ubig)>> {
    let (mut bf, bc) = batch_fixture(p, kind);
    let base = PointLanes::splat(g, ks.len());
    let acc = bc.scalar_mul(&mut bf, ks, &base, None);
    bc.to_affine(&mut bf, &acc)
}

// ---------------------------------------------------------------------
// Exhaustive bit-identity on a small prime: all backends, partial
// batches {1, 3, 63, 64}, forced and auto windows.
// ---------------------------------------------------------------------

#[test]
fn small_prime_lanes_match_solo_on_every_backend() {
    let p = Ubig::from(10007u64);
    let (mut sf, sc, g) = solo_fixture(&p);
    let mut rng = StdRng::seed_from_u64(42);
    for lanes in [1usize, 3, 63, 64] {
        let ks: Vec<Ubig> = (0..lanes)
            .map(|_| Ubig::random_below(&mut rng, &Ubig::from(20000u64)))
            .collect();
        let solo: Vec<Option<(Ubig, Ubig)>> = ks
            .iter()
            .map(|k| {
                let r = sc.scalar_mul(&mut sf, k, &g);
                sc.to_affine(&mut sf, &r)
            })
            .collect();
        for kind in EngineKind::ALL {
            let got = batch_affine(&p, kind, &g, &ks);
            assert_eq!(got, solo, "kind={kind:?} lanes={lanes}");
        }
    }
}

#[test]
fn small_prime_forced_windows_match_solo() {
    let p = Ubig::from(10007u64);
    let (mut sf, sc, g) = solo_fixture(&p);
    let ks: Vec<Ubig> = (0..7u64).map(|k| Ubig::from(k * k * 37 + 1)).collect();
    let solo: Vec<Option<(Ubig, Ubig)>> = ks
        .iter()
        .map(|k| {
            let r = sc.scalar_mul(&mut sf, k, &g);
            sc.to_affine(&mut sf, &r)
        })
        .collect();
    let (mut bf, bc) = batch_fixture(&p, EngineKind::Cios);
    let base = PointLanes::splat(&g, ks.len());
    for w in 1..=6usize {
        let acc = bc.scalar_mul(&mut bf, &ks, &base, Some(w));
        assert_eq!(bc.to_affine(&mut bf, &acc), solo, "window={w}");
    }
}

#[test]
fn small_prime_distinct_base_points_per_lane() {
    // Lanes multiply *different* points: [k0]G, [k1]2G, [k2]3G, ...
    let p = Ubig::from(10007u64);
    let (mut sf, sc, g) = solo_fixture(&p);
    let mut bases_solo = Vec::new();
    let mut acc = g.clone();
    for _ in 0..6 {
        bases_solo.push(acc.clone());
        acc = sc.add(&mut sf, &acc, &g);
    }
    let ks: Vec<Ubig> = (0..6u64).map(|k| Ubig::from(k * 13 + 5)).collect();
    let solo: Vec<Option<(Ubig, Ubig)>> = ks
        .iter()
        .zip(&bases_solo)
        .map(|(k, b)| {
            let r = sc.scalar_mul(&mut sf, k, b);
            sc.to_affine(&mut sf, &r)
        })
        .collect();
    for kind in EngineKind::ALL {
        let (mut bf, bc) = batch_fixture(&p, kind);
        let base = PointLanes::from_points(&bases_solo);
        let got = bc.scalar_mul(&mut bf, &ks, &base, None);
        assert_eq!(bc.to_affine(&mut bf, &got), solo, "kind={kind:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random scalars (including zero and beyond-the-order values) on
    /// random lane counts: batch ≡ solo on the default backend.
    #[test]
    fn prop_batch_lanes_match_solo(
        seed in 0u64..u64::MAX,
        lanes in 1usize..16,
    ) {
        let p = Ubig::from(10007u64);
        let (mut sf, sc, g) = solo_fixture(&p);
        let mut rng = StdRng::seed_from_u64(seed);
        let ks: Vec<Ubig> = (0..lanes)
            .map(|_| Ubig::random_bits(&mut rng, 16))
            .collect();
        let solo: Vec<Option<(Ubig, Ubig)>> = ks
            .iter()
            .map(|k| {
                let r = sc.scalar_mul(&mut sf, k, &g);
                sc.to_affine(&mut sf, &r)
            })
            .collect();
        let got = batch_affine(&p, EngineKind::default_kind(), &g, &ks);
        prop_assert_eq!(got, solo);
    }
}

// ---------------------------------------------------------------------
// Word-boundary field widths: 255 / 256 / 257-bit primes. The solo
// oracle anchors the default backend with a mixed scalar profile
// (full-width, short, 0, 1); the other backends are then checked
// bit-identical to the default backend's batch output.
// ---------------------------------------------------------------------

#[test]
fn word_boundary_primes_match_solo_and_cross_backend() {
    let mut rng = StdRng::seed_from_u64(7);
    for (name, p) in boundary_primes() {
        let (mut sf, sc, g) = solo_fixture(&p);
        // Distinct scalar profile, cycled across 64 lanes so partial
        // and full batches reuse the same four oracle results.
        let profile: Vec<Ubig> = vec![
            Ubig::random_below(&mut rng, &p), // full width
            Ubig::random_bits(&mut rng, 48),  // short
            Ubig::zero(),
            Ubig::one(),
        ];
        let oracle: Vec<Option<(Ubig, Ubig)>> = profile
            .iter()
            .map(|k| {
                let r = sc.scalar_mul(&mut sf, k, &g);
                sc.to_affine(&mut sf, &r)
            })
            .collect();
        for lanes in [1usize, 3, 63, 64] {
            let ks: Vec<Ubig> = (0..lanes).map(|i| profile[i % 4].clone()).collect();
            let want: Vec<Option<(Ubig, Ubig)>> =
                (0..lanes).map(|i| oracle[i % 4].clone()).collect();
            let got = batch_affine(&p, EngineKind::default_kind(), &g, &ks);
            assert_eq!(got, want, "prime={name} lanes={lanes}");
        }
        // Cross-backend identity with short scalars (the slow engines
        // only re-prove lane identity, already anchored above).
        let ks: Vec<Ubig> = (0..8).map(|_| Ubig::random_bits(&mut rng, 40)).collect();
        let reference = batch_affine(&p, EngineKind::default_kind(), &g, &ks);
        for kind in EngineKind::ALL {
            let got = batch_affine(&p, kind, &g, &ks);
            assert_eq!(got, reference, "prime={name} kind={kind:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Exception lanes inside batches: identity, 2-torsion-free doubling
// chain, equal points, inverse points — each patched lane must agree
// with the solo case analysis.
// ---------------------------------------------------------------------

#[test]
fn exceptional_lanes_match_solo_case_analysis() {
    let p = Ubig::from(10007u64);
    let (mut sf, sc, g) = solo_fixture(&p);
    let id = sc.identity(&mut sf);
    let g2 = sc.double(&mut sf, &g);
    let (gx, gy) = sc.to_affine(&mut sf, &g).unwrap();
    let neg = sc.point(&mut sf, &gx, &(&p - &gy));
    let pts = vec![id.clone(), g.clone(), g2.clone(), neg.clone(), g.clone()];
    let others = vec![g.clone(), g.clone(), g.clone(), g.clone(), id.clone()];
    let solo: Vec<Option<(Ubig, Ubig)>> = pts
        .iter()
        .zip(&others)
        .map(|(a, b)| {
            let r = sc.add(&mut sf, a, b);
            sc.to_affine(&mut sf, &r)
        })
        .collect();
    for kind in EngineKind::ALL {
        let (mut bf, bc) = batch_fixture(&p, kind);
        let sum = bc.add(
            &mut bf,
            &PointLanes::from_points(&pts),
            &PointLanes::from_points(&others),
        );
        assert_eq!(bc.to_affine(&mut bf, &sum), solo, "kind={kind:?}");
    }
}

// ---------------------------------------------------------------------
// Hardened mode: the constant-time scan schedule must not change any
// result.
// ---------------------------------------------------------------------

#[test]
fn hardened_scan_is_result_identical() {
    let p = Ubig::from(10007u64);
    let (mut sf, sc, g) = solo_fixture(&p);
    let ks: Vec<Ubig> = (0..5u64).map(|k| Ubig::from(k * 701 + 3)).collect();
    let solo: Vec<Option<(Ubig, Ubig)>> = ks
        .iter()
        .map(|k| {
            let r = sc.scalar_mul(&mut sf, k, &g);
            sc.to_affine(&mut sf, &r)
        })
        .collect();
    for kind in EngineKind::ALL {
        let (mut bf, bc) = batch_fixture(&p, kind);
        bf.engine_mut().set_hardening(HardeningMode::Hardened);
        let base = PointLanes::splat(&g, ks.len());
        let acc = bc.scalar_mul(&mut bf, &ks, &base, None);
        assert_eq!(bc.to_affine(&mut bf, &acc), solo, "kind={kind:?}");
    }
}

// ---------------------------------------------------------------------
// Batched field primitives at a word boundary: simultaneous inversion
// and the Montgomery domain round trip.
// ---------------------------------------------------------------------

#[test]
fn simultaneous_inversion_at_word_boundaries() {
    let mut rng = StdRng::seed_from_u64(11);
    for (name, p) in boundary_primes() {
        let params = MontgomeryParams::hardware_safe(&p);
        let mut bf = BatchFieldCtx::new(EngineKind::default_kind().build(params));
        let mut plain: Vec<Ubig> = (0..9).map(|_| Ubig::random_below(&mut rng, &p)).collect();
        plain[4] = Ubig::zero();
        let lanes = bf.to_mont(&plain);
        let invs = bf.inv(&lanes);
        for (k, inv) in invs.iter().enumerate() {
            if plain[k].is_zero() {
                assert!(inv.is_none(), "prime={name} lane {k}");
            } else {
                let prod = bf.lane_mul(&lanes[k], inv.as_ref().unwrap());
                let back = bf.from_mont(&[prod]);
                assert_eq!(back[0], Ubig::one(), "prime={name} lane {k}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Typed errors from the batch layer.
// ---------------------------------------------------------------------

#[test]
fn batch_layer_reports_typed_errors() {
    let p = Ubig::from(10007u64);
    let (mut bf, bc) = batch_fixture(&p, EngineKind::default_kind());
    let err = bc
        .try_points(&mut bf, &[(Ubig::from(2u64), Ubig::from(9999u64))])
        .unwrap_err();
    assert!(matches!(err, MmmError::PointNotOnCurve { lane: 0 }));
    let err = BatchCurve::try_new(&mut bf, &Ubig::zero(), &Ubig::zero()).unwrap_err();
    assert!(matches!(err, MmmError::SingularCurve));
}

//! The serving layer end to end: `KeyedSession` + `BatchCollector`
//! against the legacy batch entry points — results must be
//! bit-identical in submission order on **both** backends, and the
//! aggregation bookkeeping (ids, shard fill, error recovery) must
//! behave like a server can rely on.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::config::{EngineConfig, WindowPolicy};
use montgomery_systolic::core::error::MmmError;
use montgomery_systolic::core::EngineKind;
use montgomery_systolic::rsa::{
    decrypt_crt_batch, decrypt_crt_batch_with, sign_batch_with, BatchOp, KeyedSession, RsaKeyPair,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn keypair(bits: usize, seed: u64) -> RsaKeyPair {
    let mut rng = StdRng::seed_from_u64(seed);
    RsaKeyPair::generate(&mut rng, bits, 12)
}

#[test]
fn collector_is_bit_identical_to_decrypt_crt_batch_on_both_backends() {
    let key = keypair(64, 601);
    let mut rng = StdRng::seed_from_u64(602);
    // 70 singleton submissions: crosses the 64-lane shard boundary,
    // so the collector must aggregate a full shard plus a remainder.
    let ms: Vec<Ubig> = (0..70)
        .map(|_| Ubig::random_below(&mut rng, &key.n))
        .collect();
    let cs: Vec<Ubig> = ms.iter().map(|m| m.modpow(&key.e, &key.n)).collect();
    let want = decrypt_crt_batch(&key, &cs);
    assert_eq!(want, ms, "oracle roundtrip");
    for kind in EngineKind::ALL {
        let session =
            KeyedSession::new(key.clone(), EngineConfig::default().with_backend(kind)).unwrap();
        let mut collector = session.collector(BatchOp::DecryptCrt);
        for (want_id, c) in cs.iter().enumerate() {
            assert_eq!(collector.submit(c.clone()).unwrap(), want_id);
        }
        assert_eq!(collector.full_shards(), 1, "70 requests = 1 full shard");
        let got = collector.flush().unwrap();
        assert_eq!(
            got,
            decrypt_crt_batch_with(&key, &cs, kind),
            "submission order, bit for bit ({})",
            kind.name()
        );
        assert_eq!(got, want, "cross-backend agreement ({})", kind.name());
    }
}

#[test]
fn collector_sign_flow_matches_batch_signing() {
    let key = keypair(48, 603);
    let mut rng = StdRng::seed_from_u64(604);
    let ms: Vec<Ubig> = (0..9)
        .map(|_| Ubig::random_below(&mut rng, &key.n))
        .collect();
    for kind in EngineKind::ALL {
        let session =
            KeyedSession::new(key.clone(), EngineConfig::default().with_backend(kind)).unwrap();
        let mut collector = session.collector(BatchOp::Sign);
        for m in &ms {
            collector.submit(m.clone()).unwrap();
        }
        let sigs = collector.flush().unwrap();
        assert_eq!(sigs, sign_batch_with(&key, &ms, kind), "{}", kind.name());
        assert!(session.verify(&ms, &sigs).unwrap().into_iter().all(|ok| ok));
    }
}

#[test]
fn collector_flush_drains_and_can_refill() {
    let key = keypair(32, 605);
    let session = KeyedSession::new(key.clone(), EngineConfig::default()).unwrap();
    let mut collector = session.collector(BatchOp::DecryptCrt);
    assert_eq!(collector.flush().unwrap_err(), MmmError::EmptyBatch);
    let m = Ubig::from(12345u64).rem(&key.n);
    let c = m.modpow(&key.e, &key.n);
    // Two rounds through the same collector: ids restart per flush.
    for _ in 0..2 {
        assert_eq!(collector.submit(c.clone()).unwrap(), 0);
        assert_eq!(collector.flush().unwrap(), vec![m.clone()]);
        assert!(collector.is_empty());
    }
}

#[test]
fn session_honors_window_policy_and_shard_width() {
    let key = keypair(48, 606);
    let mut rng = StdRng::seed_from_u64(607);
    let ms: Vec<Ubig> = (0..10)
        .map(|_| Ubig::random_below(&mut rng, &key.n))
        .collect();
    let cs: Vec<Ubig> = ms.iter().map(|m| m.modpow(&key.e, &key.n)).collect();
    let want = decrypt_crt_batch(&key, &cs);
    // Every window width and a narrow shard must change schedule and
    // fan-out, never results.
    for w in [1usize, 2, 4, 6] {
        let config = EngineConfig::default()
            .with_window(WindowPolicy::Fixed(w))
            .unwrap()
            .with_shard_lanes(3)
            .unwrap();
        let session = KeyedSession::new(key.clone(), config).unwrap();
        assert_eq!(session.decrypt_crt(&cs).unwrap(), want, "w={w}");
        assert_eq!(
            session.sign(&ms).unwrap(),
            sign_batch_with(&key, &ms, EngineKind::Cios)
        );
    }
}

#[test]
fn from_env_config_builds_a_working_session() {
    // In the default CI environment this is the CIOS path; under the
    // MMM_ENGINE=bitsliced job it exercises the override end to end.
    let key = keypair(32, 608);
    let config = EngineConfig::from_env().expect("test environment is clean");
    assert_eq!(config.backend(), EngineKind::default_kind());
    let session = KeyedSession::new(key.clone(), config).unwrap();
    let m = Ubig::from(99u64).rem(&key.n);
    let c = m.modpow(&key.e, &key.n);
    assert_eq!(session.decrypt_crt(&[c]).unwrap(), vec![m]);
}

//! Property-based integration tests: the hardware engines against the
//! mathematical specification, over *randomized widths and moduli* —
//! proptest drives the shrinking if anything breaks.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::cios52::{Cios52Batch, Cios52Kernel};
use montgomery_systolic::core::mmmc::GateEngine;
use montgomery_systolic::core::montgomery::{mont_mul_alg1, mont_mul_alg2, MontgomeryParams};
use montgomery_systolic::core::wave::WaveMmmc;
use montgomery_systolic::core::{BatchMontMul, Mmmc, MontMul};
use montgomery_systolic::hdl::CarryStyle;
use proptest::prelude::*;

/// Strategy: hardware-safe parameters with width in [4, 20] and a
/// uniformly chosen odd modulus below the safe limit.
fn safe_params() -> impl Strategy<Value = MontgomeryParams> {
    (4usize..=20).prop_flat_map(|l| {
        let max = MontgomeryParams::max_safe_modulus(l)
            .to_u64()
            .expect("small width");
        (Just(l), 3u64..=max).prop_map(|(l, n)| {
            let n = n | 1; // odd; still ≤ max because max is odd
            MontgomeryParams::new(&Ubig::from(n), l)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn wave_engine_matches_spec(
        params in safe_params(),
        xs in any::<u64>(),
        ys in any::<u64>()
    ) {
        let two_n = params.two_n().to_u64().unwrap();
        let x = Ubig::from(xs % two_n);
        let y = Ubig::from(ys % two_n);
        let mut wave = WaveMmmc::new(params.clone());
        let got = wave.mont_mul(&x, &y);
        prop_assert_eq!(got, mont_mul_alg2(&params, &x, &y));
    }

    #[test]
    fn gate_engine_matches_spec(
        params in safe_params(),
        xs in any::<u64>(),
        ys in any::<u64>()
    ) {
        let two_n = params.two_n().to_u64().unwrap();
        let x = Ubig::from(xs % two_n);
        let y = Ubig::from(ys % two_n);
        let mmmc = Mmmc::build(params.l(), CarryStyle::XorMux);
        let mut gate = GateEngine::new(&mmmc, params.clone());
        let (got, cycles) = gate.mont_mul_counted(&x, &y);
        prop_assert_eq!(got, mont_mul_alg2(&params, &x, &y));
        prop_assert_eq!(cycles, (3 * params.l() + 4) as u64);
    }

    #[test]
    fn cios52_every_kernel_matches_spec(
        params in safe_params(),
        xs in any::<u64>(),
        ys in any::<u64>(),
        lanes in 1usize..=64
    ) {
        // The radix-2⁵² carry-save engine against the mathematical
        // specification, on every kernel this host can run, including
        // partial batches (lanes < 64).
        let two_n = params.two_n().to_u64().unwrap();
        let xs: Vec<Ubig> = (0..lanes)
            .map(|k| {
                let step = (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Ubig::from(xs.wrapping_add(step) % two_n)
            })
            .collect();
        let ys: Vec<Ubig> = (0..lanes)
            .map(|k| Ubig::from(ys.wrapping_mul(2 * k as u64 + 1) % two_n))
            .collect();
        let want: Vec<Ubig> = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| mont_mul_alg2(&params, x, y))
            .collect();
        for &kernel in Cios52Kernel::available() {
            let mut e = Cios52Batch::with_kernel(params.clone(), kernel);
            prop_assert_eq!(
                e.mont_mul_batch(&xs, &ys),
                want.clone(),
                "kernel {}",
                kernel.name()
            );
        }
    }

    #[test]
    fn alg1_alg2_domain_relation(
        params in safe_params(),
        xs in any::<u64>(),
        ys in any::<u64>()
    ) {
        // Alg2 = Alg1 · 4⁻¹ (mod N) when inputs are reduced.
        let n = params.n().clone();
        let nv = n.to_u64().unwrap();
        let x = Ubig::from(xs % nv);
        let y = Ubig::from(ys % nv);
        let a1 = mont_mul_alg1(&params, &x, &y);
        let a2 = mont_mul_alg2(&params, &x, &y);
        let inv4 = Ubig::from(4u64).modinv(&n).unwrap();
        prop_assert_eq!(a2.rem(&n), a1.modmul(&inv4, &n));
    }

    #[test]
    fn output_bound_invariant(
        params in safe_params(),
        seeds in prop::collection::vec(any::<u64>(), 1..12)
    ) {
        // Arbitrary chains of multiplications stay below 2N.
        let two_n = params.two_n().to_u64().unwrap();
        let mut wave = WaveMmmc::new(params.clone());
        let mut t = Ubig::from(seeds[0] % two_n);
        for &s in &seeds {
            let u = Ubig::from(s % two_n);
            t = wave.mont_mul(&t, &u);
            prop_assert!(params.check_operand(&t));
        }
    }
}

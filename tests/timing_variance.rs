//! Timing-variance harness smoke and (opt-in) leakage gate.
//!
//! Default mode keeps CI deterministic: run both dudect-style probes
//! (`mmm_bench::timing`) in both hardening modes at a small sample
//! count and assert only that the harness produces *finite*
//! t-statistics — timing verdicts on shared CI hardware are noisy, so
//! the strict `|t| < 4.5` gate on the hardened rows is opt-in via
//! `MMM_TIMING_GATE=1` (run it on quiet hardware with `--release`;
//! EXPERIMENTS.md documents the methodology and the noise caveats).

use mmm_bench::timing::{
    probe_digit_selection, probe_final_subtraction, HardeningMode, TimingReport, T_THRESHOLD,
};

fn gate_enabled() -> bool {
    std::env::var("MMM_TIMING_GATE").as_deref() == Ok("1")
}

fn run_probe(
    name: &str,
    probe: fn(HardeningMode, usize) -> TimingReport,
    mode: HardeningMode,
) -> TimingReport {
    // The gate needs real statistical power; the smoke run only needs
    // to exercise every code path (including cropping, which wants
    // ≥ 10 samples per class).
    let n_per_class = if gate_enabled() { 60 } else { 12 };
    let r = probe(mode, n_per_class);
    assert!(
        r.t.is_finite(),
        "{name} ({mode:?}): non-finite t — broken harness"
    );
    assert!(r.mean_fixed_ns > 0.0 && r.mean_random_ns > 0.0, "{name}");
    assert_eq!(r.samples_per_class, n_per_class);
    r
}

#[test]
fn digit_selection_probe_is_finite_and_gates_hardened() {
    run_probe("digit-selection", probe_digit_selection, HardeningMode::Off);
    let hardened = run_probe(
        "digit-selection",
        probe_digit_selection,
        HardeningMode::Hardened,
    );
    if gate_enabled() {
        assert!(
            hardened.passes(),
            "hardened digit selection leaks: |t| = {:.2} >= {T_THRESHOLD}",
            hardened.t.abs()
        );
    }
}

#[test]
fn final_subtraction_probe_is_finite_and_gates_hardened() {
    run_probe(
        "final-subtraction",
        probe_final_subtraction,
        HardeningMode::Off,
    );
    let hardened = run_probe(
        "final-subtraction",
        probe_final_subtraction,
        HardeningMode::Hardened,
    );
    if gate_enabled() {
        assert!(
            hardened.passes(),
            "hardened final subtraction leaks: |t| = {:.2} >= {T_THRESHOLD}",
            hardened.t.abs()
        );
    }
}

//! Proof that every batch engine's hot path is allocation-free once
//! warm: a counting global allocator wraps the system allocator, and
//! after two warm-up batches (which size the lane state and the
//! reusable output buffers) further `mont_mul_batch_into` calls must
//! perform **zero** heap operations — on the bit-sliced engine, the
//! radix-2⁶⁴ CIOS engine, and the radix-2⁵² carry-save engine alike.
//!
//! Runs with `harness = false` (see the `[[test]]` entry in
//! `Cargo.toml`): the libtest harness keeps its main thread alive
//! alongside the test thread and occasionally allocates from it
//! mid-window (observed as rare 2-op flakes), so this binary is a
//! plain single-threaded `main` — the only thread that can touch the
//! heap during a measurement window is the one being measured.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::batch::BitSlicedBatch;
use montgomery_systolic::core::cios::CiosBatch;
use montgomery_systolic::core::cios52::Cios52Batch;
use montgomery_systolic::core::modgen::{random_operand, random_safe_params};
use montgomery_systolic::core::montgomery::mont_mul_alg2;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with a global operation counter (allocations and
/// reallocations; frees are not counted — a free on the hot path
/// implies a matching allocation elsewhere anyway).
struct CountingAlloc;

static HEAP_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn main() {
    warm_batch_multiplication_does_not_allocate();
    println!("alloc_free: ok (all three engines' warm hot paths performed zero heap ops)");
}

fn warm_batch_multiplication_does_not_allocate() {
    // l = 70 puts the l + 2 position vectors across a u64 word
    // boundary, so the transpose handles a ragged final block.
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let params = random_safe_params(&mut rng, 70);
    let xs: Vec<Ubig> = (0..64).map(|_| random_operand(&mut rng, &params)).collect();
    let ys: Vec<Ubig> = (0..64).map(|_| random_operand(&mut rng, &params)).collect();

    let mut engine = BitSlicedBatch::new(params.clone());
    let mut a: Vec<Ubig> = Vec::new();
    let mut b: Vec<Ubig> = Vec::new();

    // Warm-up: the first calls size the output buffers (and give each
    // lane its full limb capacity even after normalization shrank it).
    engine.mont_mul_batch_into(&xs, &ys, &mut a);
    engine.mont_mul_batch_into(&a, &a, &mut b);
    std::mem::swap(&mut a, &mut b);

    // Measurement window: results feed back as operands (Algorithm 2
    // outputs are valid inputs), ping-ponging between two buffers.
    let before = HEAP_OPS.load(Ordering::SeqCst);
    for _ in 0..8 {
        engine.mont_mul_batch_into(&a, &a, &mut b);
        std::mem::swap(&mut a, &mut b);
    }
    let after = HEAP_OPS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warm mont_mul_batch_into must not touch the heap"
    );

    // And the values coming out of the measured window are still
    // correct (same squaring chain on the software oracle).
    let mut want: Vec<Ubig> = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| mont_mul_alg2(&params, x, y))
        .collect();
    want = want.iter().map(|v| mont_mul_alg2(&params, v, v)).collect();
    for _ in 0..8 {
        want = want.iter().map(|v| mont_mul_alg2(&params, v, v)).collect();
    }
    assert_eq!(a, want, "hot-path results must stay bit-identical");

    // Same discipline for the radix-2^64 CIOS batch engine: the SoA
    // operand/accumulator buffers live in the engine and the output
    // lanes recycle their limb capacity, so the warm word-level path
    // must not touch the heap either.
    let mut cios = CiosBatch::new(params.clone());
    let mut ca: Vec<Ubig> = Vec::new();
    let mut cb: Vec<Ubig> = Vec::new();
    cios.mont_mul_batch_into(&xs, &ys, &mut ca);
    cios.mont_mul_batch_into(&ca, &ca, &mut cb);
    std::mem::swap(&mut ca, &mut cb);

    let before = HEAP_OPS.load(Ordering::SeqCst);
    for _ in 0..8 {
        cios.mont_mul_batch_into(&ca, &ca, &mut cb);
        std::mem::swap(&mut ca, &mut cb);
    }
    let after = HEAP_OPS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warm CIOS mont_mul_batch_into must not touch the heap"
    );
    assert_eq!(ca, a, "CIOS squaring chain bit-identical to bit-sliced");

    // And for the radix-2^52 carry-save engine (whichever kernel is
    // active on this host): the digit-domain conversions run through
    // the engine-owned word/digit SoA scratch buffers, so the warm
    // path must be heap-free too. Note Cios52Kernel::available() has
    // already been forced by construction, so the OnceLock init (one
    // Vec) happens before the measurement window.
    let mut c52 = Cios52Batch::new(params.clone());
    let mut fa: Vec<Ubig> = Vec::new();
    let mut fb: Vec<Ubig> = Vec::new();
    c52.mont_mul_batch_into(&xs, &ys, &mut fa);
    c52.mont_mul_batch_into(&fa, &fa, &mut fb);
    std::mem::swap(&mut fa, &mut fb);

    let before = HEAP_OPS.load(Ordering::SeqCst);
    for _ in 0..8 {
        c52.mont_mul_batch_into(&fa, &fa, &mut fb);
        std::mem::swap(&mut fa, &mut fb);
    }
    let after = HEAP_OPS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warm Cios52 mont_mul_batch_into must not touch the heap"
    );
    assert_eq!(fa, a, "Cios52 squaring chain bit-identical to bit-sliced");
}

//! Proof that the bit-sliced batch engine's hot path is
//! allocation-free once warm: a counting global allocator wraps the
//! system allocator, and after two warm-up batches (which size the
//! lane state and the reusable output buffers) further
//! `mont_mul_batch_into` calls must perform **zero** heap operations.
//!
//! Kept to a single `#[test]` so no parallel test can perturb the
//! global counter while a measurement window is open.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::batch::BitSlicedBatch;
use montgomery_systolic::core::modgen::{random_operand, random_safe_params};
use montgomery_systolic::core::montgomery::mont_mul_alg2;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with a global operation counter (allocations and
/// reallocations; frees are not counted — a free on the hot path
/// implies a matching allocation elsewhere anyway).
struct CountingAlloc;

static HEAP_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_batch_multiplication_does_not_allocate() {
    // l = 70 puts the l + 2 position vectors across a u64 word
    // boundary, so the transpose handles a ragged final block.
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let params = random_safe_params(&mut rng, 70);
    let xs: Vec<Ubig> = (0..64).map(|_| random_operand(&mut rng, &params)).collect();
    let ys: Vec<Ubig> = (0..64).map(|_| random_operand(&mut rng, &params)).collect();

    let mut engine = BitSlicedBatch::new(params.clone());
    let mut a: Vec<Ubig> = Vec::new();
    let mut b: Vec<Ubig> = Vec::new();

    // Warm-up: the first calls size the output buffers (and give each
    // lane its full limb capacity even after normalization shrank it).
    engine.mont_mul_batch_into(&xs, &ys, &mut a);
    engine.mont_mul_batch_into(&a, &a, &mut b);
    std::mem::swap(&mut a, &mut b);

    // Measurement window: results feed back as operands (Algorithm 2
    // outputs are valid inputs), ping-ponging between two buffers.
    let before = HEAP_OPS.load(Ordering::SeqCst);
    for _ in 0..8 {
        engine.mont_mul_batch_into(&a, &a, &mut b);
        std::mem::swap(&mut a, &mut b);
    }
    let after = HEAP_OPS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warm mont_mul_batch_into must not touch the heap"
    );

    // And the values coming out of the measured window are still
    // correct (same squaring chain on the software oracle).
    let mut want: Vec<Ubig> = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| mont_mul_alg2(&params, x, y))
        .collect();
    want = want.iter().map(|v| mont_mul_alg2(&params, v, v)).collect();
    for _ in 0..8 {
        want = want.iter().map(|v| mont_mul_alg2(&params, v, v)).collect();
    }
    assert_eq!(a, want, "hot-path results must stay bit-identical");
}

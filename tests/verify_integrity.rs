//! The arithmetic-integrity suite: engine-level corruption injection
//! (`mmm_core::verify::faults`) driven through the CRT
//! verify-before-release countermeasure, on **every** backend.
//!
//! The contract under test (DESIGN.md §11): an injected corruption is
//! *never released* — it is either transparently corrected by a
//! verified retry, or surfaced as the typed
//! [`MmmError::IntegrityViolation`] naming the lane. A wrong answer
//! escaping `decrypt_crt` is the one outcome these tests make
//! impossible, because a faulty CRT half is exactly the Bellcore
//! fault-attack lever that factors `N`.

use montgomery_systolic::core::verify::faults::CorruptionPlan;
use montgomery_systolic::core::verify::{
    Quarantine, VerifiedEngine, VerifyContext, VerifyPolicy, QUARANTINE_THRESHOLD,
};
use montgomery_systolic::core::{BatchMontMul, EngineConfig, EngineKind, MmmError};
use montgomery_systolic::rsa::{KeyedSession, RsaKeyPair};
use montgomery_systolic::Ubig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// One fixed keypair for the whole suite (generation dominates the
/// runtime of every individual case).
fn shared_key() -> &'static RsaKeyPair {
    static KEY: OnceLock<RsaKeyPair> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xB511C0);
        RsaKeyPair::generate(&mut rng, 64, 12)
    })
}

/// `lanes` ciphertexts of distinct small plaintexts under the shared
/// key, plus the expected decryptions.
fn ciphertexts(lanes: usize) -> (Vec<Ubig>, Vec<Ubig>) {
    let key = shared_key();
    let ms: Vec<Ubig> = (0..lanes).map(|k| Ubig::from(17 + 13 * k as u64)).collect();
    let cs: Vec<Ubig> = ms.iter().map(|m| m.modpow(&key.e, &key.n)).collect();
    (cs, ms)
}

/// A config with its own quarantine ledger and fault plan, so
/// parallel tests never observe each other's strikes or injections.
fn isolated_config(
    kind: EngineKind,
    policy: VerifyPolicy,
) -> (EngineConfig, Arc<CorruptionPlan>, Arc<Quarantine>) {
    let faults = Arc::new(CorruptionPlan::default());
    let quarantine = Arc::new(Quarantine::new());
    let config = EngineConfig::default()
        .with_backend(kind)
        .with_verify(policy)
        .with_faults(Arc::clone(&faults))
        .with_quarantine(Arc::clone(&quarantine));
    (config, faults, quarantine)
}

#[test]
fn crt_half_fault_is_corrected_transparently_on_every_backend() {
    let key = shared_key();
    let (cs, ms) = ciphertexts(6);
    for kind in EngineKind::ALL {
        let (config, faults, quarantine) = isolated_config(kind, VerifyPolicy::Full);
        faults.inject_crt_half_fault(3, 9, 1);
        let session = KeyedSession::new(key.clone(), config).unwrap();
        let got = session.decrypt_crt(&cs).unwrap();
        assert_eq!(got, ms, "{}: corrected result must be exact", kind.name());
        let stats = quarantine.stats();
        assert_eq!(faults.half_faults_fired(), 1, "{}", kind.name());
        assert!(
            stats.violations >= 1,
            "{}: fault must be detected",
            kind.name()
        );
        assert!(
            stats.corrected >= 1,
            "{}: fault must be corrected",
            kind.name()
        );
        assert!(stats.fallback_retries >= 1, "{}", kind.name());
    }
}

#[test]
fn persistent_corruption_surfaces_as_typed_integrity_violation() {
    let key = shared_key();
    let (cs, _ms) = ciphertexts(4);
    for kind in EngineKind::ALL {
        // Four armed faults: both halves of the first pass *and* both
        // halves of the fallback retry are corrupted — the layer must
        // withhold the plaintext rather than release it.
        let (config, faults, quarantine) = isolated_config(kind, VerifyPolicy::Full);
        faults.inject_crt_half_fault(2, 5, 4);
        let session = KeyedSession::new(key.clone(), config).unwrap();
        let err = session.decrypt_crt(&cs).unwrap_err();
        assert!(
            matches!(err, MmmError::IntegrityViolation { .. }),
            "{}: got {err:?}",
            kind.name()
        );
        assert!(quarantine.stats().violations >= 1, "{}", kind.name());
    }
}

#[test]
fn corrupted_pooled_param_residue_is_caught_before_release() {
    let key = shared_key();
    let (cs, ms) = ciphertexts(5);
    for kind in EngineKind::ALL {
        let (config, faults, quarantine) = isolated_config(kind, VerifyPolicy::Full);
        faults.inject_param_corruption(1, 1);
        let session = KeyedSession::new(key.clone(), config).unwrap();
        let got = session.decrypt_crt(&cs).unwrap();
        assert_eq!(got, ms, "{}", kind.name());
        assert_eq!(faults.param_faults_fired(), 1, "{}", kind.name());
        assert!(quarantine.stats().corrected >= 1, "{}", kind.name());
    }
}

#[test]
fn quarantined_backend_falls_back_to_a_healthy_one_and_stays_correct() {
    let key = shared_key();
    let (cs, ms) = ciphertexts(3);
    let (config, _faults, quarantine) = isolated_config(EngineKind::Cios52, VerifyPolicy::Full);
    for _ in 0..QUARANTINE_THRESHOLD {
        quarantine.record_violation(EngineKind::Cios52);
    }
    assert!(quarantine.is_quarantined(EngineKind::Cios52));
    let session = KeyedSession::new(key.clone(), config).unwrap();
    // Dispatch must route around the benched backend: the run still
    // succeeds, bit-exact, with zero new violations.
    let before = quarantine.stats().violations;
    let got = session.decrypt_crt(&cs).unwrap();
    assert_eq!(got, ms);
    assert_eq!(quarantine.stats().violations, before);
}

#[test]
fn off_policy_skips_verification_entirely() {
    let key = shared_key();
    let (cs, ms) = ciphertexts(4);
    let (config, _faults, quarantine) = isolated_config(EngineKind::Cios, VerifyPolicy::Off);
    let session = KeyedSession::new(key.clone(), config).unwrap();
    assert_eq!(session.decrypt_crt(&cs).unwrap(), ms);
    assert_eq!(quarantine.stats(), Default::default());
}

#[test]
fn sampled_residue_checks_catch_mont_mul_corruption_at_the_configured_rate() {
    // Engine level: arm a mont-mul flip on *every* call under
    // Sampled{one_in: 4}. Exactly every 4th call runs the shadow
    // check, so exactly calls/4 corruptions are caught and corrected;
    // the remainder deliberately escape (that is the sampling
    // trade-off the policy documents).
    let mut rng = StdRng::seed_from_u64(7);
    let params = montgomery_systolic::core::montgomery::MontgomeryParams::hardware_safe(
        &montgomery_systolic::core::modgen::random_odd_modulus(&mut rng, 96),
    );
    let faults = Arc::new(CorruptionPlan::default());
    let quarantine = Arc::new(Quarantine::new());
    let ctx = VerifyContext {
        policy: VerifyPolicy::Sampled { one_in: 4 },
        faults: Arc::clone(&faults),
        quarantine: Arc::clone(&quarantine),
    };
    let kind = EngineKind::Cios;
    let mut engine = VerifiedEngine::new(kind.build(params.clone()), kind, ctx);
    let x = montgomery_systolic::core::modgen::random_operand(&mut rng, &params);
    let y = montgomery_systolic::core::modgen::random_operand(&mut rng, &params);
    let calls = 32;
    for _ in 0..calls {
        faults.inject_mont_mul_flip(0, 3, 1);
        let _ = engine.mont_mul_batch(std::slice::from_ref(&x), std::slice::from_ref(&y));
    }
    assert_eq!(faults.mont_flips_fired(), calls);
    let stats = quarantine.stats();
    assert_eq!(stats.corrected, calls / 4, "one in four calls is checked");
    assert_eq!(stats.violations, calls / 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero-miss: *every* single-bit corruption injected into a CRT
    /// half-run, at any lane and any bit position, on any backend, is
    /// caught by verify-before-release — the caller sees either the
    /// exact plaintexts (verified retry) or a typed integrity error,
    /// never a silently wrong answer.
    #[test]
    fn every_injected_crt_half_flip_is_caught(
        lane in 0usize..8,
        bit in 0usize..48,
        kind_ix in 0usize..EngineKind::ALL.len(),
    ) {
        let kind = EngineKind::ALL[kind_ix];
        let key = shared_key();
        let (cs, ms) = ciphertexts(8);
        let (config, faults, quarantine) = isolated_config(kind, VerifyPolicy::Full);
        faults.inject_crt_half_fault(lane, bit, 1);
        let session = KeyedSession::new(key.clone(), config).unwrap();
        match session.decrypt_crt(&cs) {
            Ok(got) => {
                prop_assert_eq!(got, ms, "released plaintexts must be exact");
                prop_assert!(quarantine.stats().violations >= 1, "fault was detected");
                prop_assert!(quarantine.stats().corrected >= 1, "fault was corrected");
            }
            Err(e) => {
                // Only the typed integrity error is an acceptable
                // failure — anything else is a contract break.
                prop_assert!(matches!(e, MmmError::IntegrityViolation { .. }), "{:?}", e);
            }
        }
        prop_assert_eq!(faults.half_faults_fired(), 1);
    }
}

//! The ECC serving surface end to end: batched ECDSA verification
//! against an independent known-answer vector and an in-test affine
//! signer, ECDH round trips, collector ordering/error semantics, and
//! cross-backend result identity. Honors `MMM_ENGINE` through
//! `EngineConfig::from_env` so the CI backend sweep drives the same
//! assertions on every engine.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::{EngineConfig, EngineKind, HardeningMode, MmmError};
use montgomery_systolic::ecc::curves::{p256, CurveSpec};
use montgomery_systolic::ecc::serve::{CurveSession, EcdhRequest, EcdsaRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config() -> EngineConfig {
    EngineConfig::from_env().expect("clean MMM_* environment")
}

// ---------------------------------------------------------------------
// Plain affine reference arithmetic (independent of every engine and
// of the Jacobian/Montgomery machinery under test).
// ---------------------------------------------------------------------

type Aff = Option<(Ubig, Ubig)>;

fn inv_mod(x: &Ubig, p: &Ubig) -> Ubig {
    x.rem(p).modinv(p).expect("inverse exists for test inputs")
}

fn aff_add(p: &Ubig, a: &Ubig, p1: &Aff, p2: &Aff) -> Aff {
    match (p1, p2) {
        (None, q) => q.clone(),
        (q, None) => q.clone(),
        (Some((x1, y1)), Some((x2, y2))) => {
            if x1 == x2 && y1.modadd(y2, p).is_zero() {
                return None;
            }
            let l = if x1 == x2 && y1 == y2 {
                let num = Ubig::from(3u64).modmul(&x1.modmul(x1, p), p).modadd(a, p);
                num.modmul(&inv_mod(&y1.modadd(y1, p), p), p)
            } else {
                y2.modsub(y1, p).modmul(&inv_mod(&x2.modsub(x1, p), p), p)
            };
            let x3 = l.modmul(&l, p).modsub(x1, p).modsub(x2, p);
            let y3 = l.modmul(&x1.modsub(&x3, p), p).modsub(y1, p);
            Some((x3, y3))
        }
    }
}

fn aff_mul(p: &Ubig, a: &Ubig, k: &Ubig, pt: &Aff) -> Aff {
    let mut acc: Aff = None;
    for i in (0..k.bit_len()).rev() {
        acc = aff_add(p, a, &acc, &acc.clone());
        if k.bit(i) {
            acc = aff_add(p, a, &acc, pt);
        }
    }
    acc
}

/// Textbook ECDSA signing over the affine reference: `r = x([k]G) mod
/// n`, `s = k⁻¹(z + r·d) mod n`. The chosen `k` values in the tests
/// never produce `r = 0` or `s = 0`.
fn ecdsa_sign(spec: &CurveSpec, z: &Ubig, d: &Ubig, k: &Ubig) -> (Ubig, Ubig) {
    let g = Some((spec.gx.clone(), spec.gy.clone()));
    let (rx, _) = aff_mul(&spec.p, &spec.a, k, &g).expect("k < order");
    let n = &spec.order;
    let r = rx.rem(n);
    assert!(!r.is_zero(), "test nonce produced r = 0");
    let s = inv_mod(k, n).modmul(&z.rem(n).modadd(&r.modmul(&d.rem(n), n), n), n);
    assert!(!s.is_zero(), "test nonce produced s = 0");
    (r, s)
}

// ---------------------------------------------------------------------
// Known-answer test: RFC 6979 §A.2.5, P-256 + SHA-256, message
// "sample" — an externally published vector, independent of every
// line of this workspace.
// ---------------------------------------------------------------------

fn rfc6979_sample_request() -> EcdsaRequest {
    let hex = |s: &str| Ubig::from_hex(s).unwrap();
    EcdsaRequest {
        z: hex("AF2BDBE1AA9B6EC1E2ADE1D694F41FC71A831D0268E9891562113D8A62ADD1BF"),
        r: hex("EFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716"),
        s: hex("F7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8"),
        qx: hex("60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6"),
        qy: hex("7903FE1008B8BC99A41AE9E95628BC64F2F1B20C2D7E9F5177A3C294D4462299"),
    }
}

#[test]
fn ecdsa_rfc6979_p256_known_answer() {
    let session = CurveSession::new(p256(), config()).unwrap();
    let good = rfc6979_sample_request();
    let mut bad_s = good.clone();
    bad_s.s = bad_s.s.modadd(&Ubig::one(), &session.spec().order);
    let mut bad_z = good.clone();
    bad_z.z = bad_z.z.modadd(&Ubig::one(), &session.spec().order);
    let verdicts = session.verify_ecdsa(&[good.clone(), bad_s, bad_z]).unwrap();
    assert_eq!(verdicts, vec![true, false, false]);
    // Degenerate r/s are verdicts, not errors.
    let mut zero_r = good.clone();
    zero_r.r = Ubig::zero();
    let mut huge_s = good;
    huge_s.s = session.spec().order.clone();
    let verdicts = session.verify_ecdsa(&[zero_r, huge_s]).unwrap();
    assert_eq!(verdicts, vec![false, false]);
}

#[test]
fn ecdsa_round_trip_against_affine_signer() {
    let spec = p256();
    let session = CurveSession::new(spec.clone(), config()).unwrap();
    let mut rng = StdRng::seed_from_u64(1009);
    let g = Some((spec.gx.clone(), spec.gy.clone()));
    let mut reqs = Vec::new();
    for _ in 0..3 {
        let d = Ubig::random_below(&mut rng, &spec.order);
        let k = Ubig::random_below(&mut rng, &spec.order);
        let z = Ubig::random_bits(&mut rng, 256);
        let (qx, qy) = aff_mul(&spec.p, &spec.a, &d, &g).expect("d > 0");
        let (r, s) = ecdsa_sign(&spec, &z, &d, &k);
        reqs.push(EcdsaRequest { z, r, s, qx, qy });
    }
    let verdicts = session.verify_ecdsa(&reqs).unwrap();
    assert_eq!(
        verdicts,
        vec![true; reqs.len()],
        "genuine signatures verify"
    );
    // Cross-wire digests: every verdict flips.
    let mut crossed = reqs.clone();
    crossed[0].z = reqs[1].z.clone();
    crossed[1].z = reqs[2].z.clone();
    crossed[2].z = reqs[0].z.clone();
    let verdicts = session.verify_ecdsa(&crossed).unwrap();
    assert_eq!(verdicts, vec![false; crossed.len()]);
}

#[test]
fn ecdsa_rejects_off_curve_public_key() {
    let session = CurveSession::new(p256(), config()).unwrap();
    let mut req = rfc6979_sample_request();
    req.qy = req.qy.modadd(&Ubig::one(), &session.spec().p);
    let err = session
        .verify_ecdsa(&[rfc6979_sample_request(), req])
        .unwrap_err();
    assert!(matches!(err, MmmError::PointNotOnCurve { lane: 1 }));
}

// ---------------------------------------------------------------------
// ECDH on P-256: mirrored derivations agree; the shared secret
// matches the affine reference.
// ---------------------------------------------------------------------

#[test]
fn ecdh_p256_round_trip_matches_affine_reference() {
    let spec = p256();
    let session = CurveSession::new(spec.clone(), config()).unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let g = Some((spec.gx.clone(), spec.gy.clone()));
    let da = Ubig::random_below(&mut rng, &spec.order);
    let db = Ubig::random_below(&mut rng, &spec.order);
    let qa = aff_mul(&spec.p, &spec.a, &da, &g).unwrap();
    let qb = aff_mul(&spec.p, &spec.a, &db, &g).unwrap();
    let sa = session
        .ecdh(&[EcdhRequest {
            scalar: da.clone(),
            qx: qb.0.clone(),
            qy: qb.1.clone(),
        }])
        .unwrap();
    let sb = session
        .ecdh(&[EcdhRequest {
            scalar: db.clone(),
            qx: qa.0.clone(),
            qy: qa.1.clone(),
        }])
        .unwrap();
    assert_eq!(sa, sb, "mirrored derivations agree");
    let reference = aff_mul(&spec.p, &spec.a, &da, &Some(qb)).unwrap().0;
    assert_eq!(sa[0], reference, "matches the affine reference");
}

// ---------------------------------------------------------------------
// Cross-backend and hardened-mode result identity (tiny curve: cheap
// enough to run every engine).
// ---------------------------------------------------------------------

/// y² = x³ + 2x + 3 over GF(97), G = (3, 6) of order 5.
fn tiny_spec() -> CurveSpec {
    CurveSpec {
        name: "tiny97",
        p: Ubig::from(97u64),
        a: Ubig::from(2u64),
        b: Ubig::from(3u64),
        gx: Ubig::from(3u64),
        gy: Ubig::from(6u64),
        order: Ubig::from(5u64),
    }
}

#[test]
fn backends_agree_on_ecdh_and_base_multiples() {
    let reference = {
        let session = CurveSession::new(tiny_spec(), EngineConfig::default()).unwrap();
        session
            .scalar_mul_base(&[Ubig::from(1u64), Ubig::from(2u64), Ubig::from(3u64)])
            .unwrap()
    };
    for kind in EngineKind::ALL {
        let session =
            CurveSession::new(tiny_spec(), EngineConfig::default().with_backend(kind)).unwrap();
        let got = session
            .scalar_mul_base(&[Ubig::from(1u64), Ubig::from(2u64), Ubig::from(3u64)])
            .unwrap();
        assert_eq!(got, reference, "kind={kind:?}");
        let q = got[1].clone().unwrap();
        let secret = session
            .ecdh(&[EcdhRequest {
                scalar: Ubig::from(3u64),
                qx: q.0,
                qy: q.1,
            }])
            .unwrap();
        // [3]([2]G) = [6]G = [1]G (order 5).
        let g1 = reference[0].clone().unwrap();
        assert_eq!(secret[0], g1.0, "kind={kind:?}");
    }
}

#[test]
fn hardened_session_is_result_identical() {
    let spec = p256();
    let plain = CurveSession::new(spec.clone(), config()).unwrap();
    let hardened =
        CurveSession::new(spec, config().with_hardening(HardeningMode::Hardened)).unwrap();
    let req = rfc6979_sample_request();
    assert_eq!(
        plain.verify_ecdsa(std::slice::from_ref(&req)).unwrap(),
        hardened.verify_ecdsa(&[req]).unwrap()
    );
    let ks = [Ubig::from(0xDEAD_BEEFu64), Ubig::from(7u64)];
    assert_eq!(
        plain.scalar_mul_base(&ks).unwrap(),
        hardened.scalar_mul_base(&ks).unwrap()
    );
}

// ---------------------------------------------------------------------
// Collector semantics: ordering, validation, drain, empty flush.
// ---------------------------------------------------------------------

#[test]
fn ecdsa_collector_orders_validates_and_drains() {
    let spec = p256();
    let session = CurveSession::new(spec.clone(), config()).unwrap();
    let good = rfc6979_sample_request();
    let mut c = session.ecdsa_collector();
    assert!(c.is_empty());
    assert!(matches!(c.flush(), Err(MmmError::EmptyBatch)));
    let mut tampered = good.clone();
    tampered.s = tampered.s.modadd(&Ubig::one(), &spec.order);
    assert_eq!(c.submit(good.clone()).unwrap(), 0);
    assert_eq!(c.submit(tampered).unwrap(), 1);
    // Off-curve key bounces with the would-be id; queue intact.
    let mut off = good.clone();
    off.qy = off.qy.modadd(&Ubig::one(), &spec.p);
    assert!(matches!(
        c.submit(off),
        Err(MmmError::PointNotOnCurve { lane: 2 })
    ));
    assert_eq!(c.len(), 2);
    assert_eq!(c.full_shards(), 0);
    let verdicts = c.flush().unwrap();
    assert_eq!(verdicts, vec![true, false]);
    assert!(c.is_empty());
    // Drain returns ids with requests.
    c.submit(good).unwrap();
    let drained = c.drain();
    assert_eq!(drained.len(), 1);
    assert_eq!(drained[0].0, 0);
    assert!(c.is_empty());
}

#[test]
fn ecdh_collector_matches_direct_calls_across_shards() {
    // Shard width 2 forces the 5-request queue across three shards;
    // order must still be submission order.
    let session = CurveSession::new(
        tiny_spec(),
        EngineConfig::default()
            .with_shard_lanes(2)
            .expect("2 is a valid shard width"),
    )
    .unwrap();
    let pts: Vec<(Ubig, Ubig)> = session
        .scalar_mul_base(&[
            Ubig::from(1u64),
            Ubig::from(2u64),
            Ubig::from(3u64),
            Ubig::from(4u64),
            Ubig::from(1u64),
        ])
        .unwrap()
        .into_iter()
        .map(Option::unwrap)
        .collect();
    let reqs: Vec<EcdhRequest> = pts
        .iter()
        .enumerate()
        .map(|(i, (qx, qy))| EcdhRequest {
            scalar: Ubig::from((i % 4) as u64 + 1),
            qx: qx.clone(),
            qy: qy.clone(),
        })
        .collect();
    let direct = session.ecdh(&reqs).unwrap();
    let mut c = session.ecdh_collector();
    for (i, r) in reqs.iter().enumerate() {
        assert_eq!(c.submit(r.clone()).unwrap(), i);
    }
    assert_eq!(c.full_shards(), 2);
    assert_eq!(c.flush().unwrap(), direct);
}

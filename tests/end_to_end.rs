//! End-to-end application tests: RSA and ECC running on the simulated
//! hardware, spanning every crate in the workspace.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::expo::ModExp;
use montgomery_systolic::core::mmmc::GateEngine;
use montgomery_systolic::core::montgomery::MontgomeryParams;
use montgomery_systolic::core::wave::WaveMmmc;
use montgomery_systolic::core::Mmmc;
use montgomery_systolic::ecc::{Curve, FieldCtx};
use montgomery_systolic::hdl::CarryStyle;
use montgomery_systolic::rsa::RsaKeyPair;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn rsa_gate_level_roundtrip() {
    let mut rng = StdRng::seed_from_u64(1001);
    let key = RsaKeyPair::generate(&mut rng, 24, 12);
    let params = MontgomeryParams::hardware_safe(&key.n);
    let mmmc = Mmmc::build(params.l(), CarryStyle::XorMux);

    for _ in 0..3 {
        let m = Ubig::random_below(&mut rng, &key.n);
        let c = ModExp::new(GateEngine::new(&mmmc, params.clone())).modexp(&m, &key.e);
        assert_eq!(c, m.modpow(&key.e, &key.n), "hardware encrypt");
        let back = ModExp::new(GateEngine::new(&mmmc, params.clone())).modexp(&c, &key.d);
        assert_eq!(back, m, "hardware decrypt");
        assert_eq!(
            montgomery_systolic::rsa::decrypt_crt(&key, &c),
            m,
            "CRT decrypt"
        );
    }
}

#[test]
fn rsa_wave_engine_512_bit() {
    // A realistic RSA size on the fast cycle-accurate engine.
    let mut rng = StdRng::seed_from_u64(1002);
    let key = RsaKeyPair::generate(&mut rng, 512, 8);
    let params = MontgomeryParams::hardware_safe(&key.n);
    let m = Ubig::random_below(&mut rng, &key.n);
    let mut enc = ModExp::new(WaveMmmc::new(params.clone()));
    let c = enc.modexp(&m, &key.e);
    assert_eq!(c, m.modpow(&key.e, &key.n));
    // e = 65537: 19 Montgomery multiplications at 3l+4 cycles each.
    let l = params.l() as u64;
    assert_eq!(enc.consumed_cycles(), Some(19 * (3 * l + 4)));
    // Decrypt via CRT (software) to round-trip.
    assert_eq!(montgomery_systolic::rsa::decrypt_crt(&key, &c), m);
}

#[test]
fn ecc_scalar_mul_on_gate_engine() {
    // Tiny field so the gate-level field multiplier stays fast:
    // p = 43 is hardware-safe at its own bit length (3·43−1 = 128 = 2^7).
    let p = Ubig::from(43u64);
    let params = MontgomeryParams::hardware_safe(&p);
    let mmmc = Mmmc::build(params.l(), CarryStyle::XorMux);
    let mut f = FieldCtx::new(GateEngine::new(&mmmc, params));
    // y² = x³ + 2x + 9 over GF(43); (1, 5): 1 + 2 + 9 = 12... find one.
    let curve = Curve::new(&mut f, &Ubig::from(2u64), &Ubig::from(9u64));
    // Find a valid affine point by brute force.
    let mut g = None;
    'search: for x in 1u64..43 {
        for y in 1u64..43 {
            if (y * y) % 43 == (x * x * x + 2 * x + 9) % 43 {
                g = Some(curve.point(&mut f, &Ubig::from(x), &Ubig::from(y)));
                break 'search;
            }
        }
    }
    let g = g.expect("curve has a point");
    // [6]G = [2]([3]G)
    let p3 = curve.scalar_mul(&mut f, &Ubig::from(3u64), &g);
    let p6a = curve.double(&mut f, &p3);
    let p6b = curve.scalar_mul(&mut f, &Ubig::from(6u64), &g);
    assert_eq!(
        curve.to_affine(&mut f, &p6a),
        curve.to_affine(&mut f, &p6b),
        "[2][3]G = [6]G on the gate-level engine"
    );
    assert!(f.consumed_cycles().unwrap() > 0, "cycles were counted");
}

#[test]
fn ecc_wave_engine_larger_field() {
    let p = Ubig::pow2(61) - Ubig::one(); // M61
    let params = MontgomeryParams::hardware_safe(&p);
    let mut f = FieldCtx::new(WaveMmmc::new(params));
    let curve = Curve::new(&mut f, &Ubig::from(2u64), &Ubig::from(3u64));
    // x = 2: rhs = 8 + 4 + 3 = 15; lift y via (p+1)/4 if QR.
    let exp = (&p + &Ubig::one()).shr_bits(2);
    let mut x = Ubig::from(1u64);
    let g = loop {
        let rhs = x
            .modpow(&Ubig::from(3u64), &p)
            .modadd(&Ubig::from(2u64).modmul(&x, &p), &p)
            .modadd(&Ubig::from(3u64), &p);
        let y = rhs.modpow(&exp, &p);
        if y.modmul(&y, &p) == rhs {
            break curve.point(&mut f, &x, &y);
        }
        x = &x + &Ubig::one();
    };
    // Homomorphism with large scalars.
    let a = Ubig::from(0x1234_5678u64);
    let b = Ubig::from(0x0FED_CBA9u64);
    let pa = curve.scalar_mul(&mut f, &a, &g);
    let pb = curve.scalar_mul(&mut f, &b, &g);
    let sum = curve.add(&mut f, &pa, &pb);
    let direct = curve.scalar_mul(&mut f, &(&a + &b), &g);
    assert_eq!(
        curve.to_affine(&mut f, &sum),
        curve.to_affine(&mut f, &direct)
    );
    assert!(curve.contains(&mut f, &sum));
}

//! Cross-engine property tests for the radix-2⁶⁴ and radix-2⁵² CIOS
//! backends and the backend-dispatch layer: CIOS ≡ CIOS-52 (on every
//! available kernel: portable/avx2/ifma) ≡ bit-sliced ≡
//! `Ubig::modpow`, lane for lane and **bit for bit** (including the
//! non-canonical `< 2N` Montgomery representatives), across
//! word-boundary widths and partial batches; plus round-trip proptests
//! for the word-domain `MontgomeryParams` view and the 64↔52-bit
//! digit-domain conversions.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::batch::{mont_mul_many_with, BitSlicedBatch};
use montgomery_systolic::core::cios::{CiosBatch, CiosMont};
use montgomery_systolic::core::cios52::{
    digits52_to_limbs, limbs_to_digits52, Cios52Batch, Cios52Kernel, DIGIT_BITS, DIGIT_MASK,
};
use montgomery_systolic::core::expo_batch::{modexp_many_with, BatchModExp};
use montgomery_systolic::core::modgen::{random_operand, random_safe_params};
use montgomery_systolic::core::montgomery::MontgomeryParams;
use montgomery_systolic::core::wave_packed::PackedMmmc;
use montgomery_systolic::core::{BatchMontMul, EngineKind, MontMul};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cios_bit_identical_to_bit_sliced_per_lane(
        l in 30usize..100,
        seed in any::<u64>(),
        lane_sel in 0usize..4
    ) {
        let lanes = [1usize, 3, 63, 64][lane_sel];
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let xs: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &params)).collect();
        let ys: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &params)).collect();

        let mut cios = CiosBatch::new(params.clone());
        let mut bits = BitSlicedBatch::new(params.clone());
        let got = cios.mont_mul_batch(&xs, &ys);
        let want = bits.mont_mul_batch(&xs, &ys);
        prop_assert_eq!(&got, &want, "batch CIOS vs bit-sliced at l={}", l);

        // The radix-2⁵² carry-save engine shares the contract too, on
        // every kernel this host can run.
        for &kernel in Cios52Kernel::available() {
            let mut c52 = Cios52Batch::with_kernel(params.clone(), kernel);
            let got52 = c52.mont_mul_batch(&xs, &ys);
            prop_assert_eq!(&got52, &want, "cios52/{} at l={}", kernel.name(), l);
        }

        // The scalar CIOS engine and the solo packed wave model agree
        // with both, so all four engines share one contract.
        let mut scalar = CiosMont::new(params.clone());
        let mut solo = PackedMmmc::new(params.clone());
        for k in 0..lanes {
            prop_assert_eq!(&got[k], &scalar.mont_mul(&xs[k], &ys[k]), "scalar lane {}", k);
            prop_assert_eq!(&got[k], &solo.mont_mul(&xs[k], &ys[k]), "packed lane {}", k);
        }
    }

    #[test]
    fn windowed_modexp_agrees_across_backends_and_oracle(
        l in 30usize..100,
        seed in any::<u64>(),
        lane_sel in 0usize..4,
        w in 1usize..=5
    ) {
        let lanes = [1usize, 3, 63, 64][lane_sel];
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let n = params.n().clone();
        let ms: Vec<Ubig> = (0..lanes).map(|_| Ubig::random_below(&mut rng, &n)).collect();
        // Per-lane exponents of wildly different lengths (including 0).
        let es: Vec<Ubig> = (0..lanes)
            .map(|k| Ubig::random_bits(&mut rng, (k * 17) % (l + 1)))
            .collect();
        let mut cios = BatchModExp::new(CiosBatch::new(params.clone()));
        let got = cios.modexp_batch_windowed(&ms, &es, w);
        let mut bits = BatchModExp::new(BitSlicedBatch::new(params.clone()));
        prop_assert_eq!(&got, &bits.modexp_batch_windowed(&ms, &es, w), "w={}", w);
        let mut c52 = BatchModExp::new(Cios52Batch::new(params.clone()));
        prop_assert_eq!(&got, &c52.modexp_batch_windowed(&ms, &es, w), "cios52 w={}", w);
        for k in 0..lanes {
            prop_assert_eq!(&got[k], &ms[k].modpow(&es[k], &n), "w={} lane {}", w, k);
        }
    }

    #[test]
    fn dispatch_entry_points_agree_across_kinds(
        l in 10usize..40,
        seed in any::<u64>(),
        count in 1usize..130
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let xs: Vec<Ubig> = (0..count).map(|_| random_operand(&mut rng, &params)).collect();
        let ys: Vec<Ubig> = (0..count).map(|_| random_operand(&mut rng, &params)).collect();
        let ms: Vec<Ubig> = (0..count)
            .map(|_| Ubig::random_below(&mut rng, params.n()))
            .collect();
        let es: Vec<Ubig> = (0..count)
            .map(|_| Ubig::random_bits(&mut rng, l))
            .collect();
        // Sweep *every* backend (not a hardcoded pair) so the next
        // EngineKind addition is covered automatically.
        let want_mul = mont_mul_many_with(&params, &xs, &ys, EngineKind::ALL[0]);
        let want_exp = modexp_many_with(&params, &ms, &es, EngineKind::ALL[0]);
        for kind in &EngineKind::ALL[1..] {
            prop_assert_eq!(
                mont_mul_many_with(&params, &xs, &ys, *kind),
                want_mul.clone(),
                "mont_mul_many_with({})",
                kind.name()
            );
            prop_assert_eq!(
                modexp_many_with(&params, &ms, &es, *kind),
                want_exp.clone(),
                "modexp_many_with({})",
                kind.name()
            );
        }
    }

    #[test]
    fn word_domain_conversions_roundtrip(
        l in 5usize..130,
        seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let n = params.n().clone();
        let w = params.word_domain();
        let x = Ubig::random_below(&mut rng, &n);
        // Canonical representatives in both domains, by definition.
        let xb = x.modmul(&params.r_mod_n(), &n);
        let xw = x.modmul(&w.r_mod_n(), &n);
        // Conversions hit the definitional values…
        prop_assert_eq!(&params.bit_to_word_mont(&xb), &xw, "bit→word at l={}", l);
        prop_assert_eq!(&params.word_to_bit_mont(&xw), &xb, "word→bit at l={}", l);
        // …and round-trip in both directions.
        prop_assert_eq!(&params.word_to_bit_mont(&params.bit_to_word_mont(&xb)), &xb);
        prop_assert_eq!(&params.bit_to_word_mont(&params.word_to_bit_mont(&xw)), &xw);
        // Also from a non-canonical (< 2N) bit-domain representative:
        // same residue class, same converted value.
        let xb2 = &xb + &n;
        if params.check_operand(&xb2) {
            prop_assert_eq!(&params.bit_to_word_mont(&xb2), &xw, "non-canonical rep");
        }
    }

    #[test]
    fn digit_domain_conversions_roundtrip_from_limbs(
        ws in prop::collection::vec(any::<u64>(), 1..8)
    ) {
        // 64-bit limbs → 52-bit digits → limbs is the identity, and
        // the digit vector is normalized and value-preserving.
        let digits = (ws.len() * 64).div_ceil(DIGIT_BITS);
        let ds = limbs_to_digits52(&ws, digits);
        prop_assert!(ds.iter().all(|&d| d <= DIGIT_MASK));
        prop_assert_eq!(digits52_to_limbs(&ds, ws.len()), ws.clone());
        // Value check against the big-integer view.
        let v = Ubig::from_limbs(ws.clone());
        let mut back = Ubig::zero();
        for &dig in ds.iter().rev() {
            back = (&back << DIGIT_BITS) + Ubig::from(dig);
        }
        prop_assert_eq!(back, v);
    }

    #[test]
    fn digit_domain_conversions_roundtrip_from_digits(
        raw in prop::collection::vec(any::<u64>(), 1..10)
    ) {
        // Normalized 52-bit digits → limbs → digits is the identity
        // (the other direction of the round trip).
        let ds: Vec<u64> = raw.iter().map(|&v| v & DIGIT_MASK).collect();
        let limbs = (ds.len() * DIGIT_BITS).div_ceil(64);
        let ws = digits52_to_limbs(&ds, limbs);
        prop_assert_eq!(limbs_to_digits52(&ws, ds.len()), ds);
    }
}

/// Deterministic regression at the exact widths the issue calls out:
/// word-boundary widths (63/64/65) and the RSA serving sizes (256,
/// 1024), every partial batch size, mont_mul bit-identity.
#[test]
fn cios_bit_identity_at_word_boundary_and_serving_widths() {
    let mut rng = StdRng::seed_from_u64(0xC105);
    for l in [63usize, 64, 65, 256, 1024] {
        let params = random_safe_params(&mut rng, l);
        let mut cios = CiosBatch::new(params.clone());
        let mut bits = BitSlicedBatch::new(params.clone());
        let mut scalar = CiosMont::new(params.clone());
        // Every radix-2⁵² kernel this host can run joins the grid.
        let mut c52: Vec<Cios52Batch> = Cios52Kernel::available()
            .iter()
            .map(|&k| Cios52Batch::with_kernel(params.clone(), k))
            .collect();
        for lanes in [1usize, 3, 63, 64] {
            let xs: Vec<Ubig> = (0..lanes)
                .map(|_| random_operand(&mut rng, &params))
                .collect();
            let ys: Vec<Ubig> = (0..lanes)
                .map(|_| random_operand(&mut rng, &params))
                .collect();
            let got = cios.mont_mul_batch(&xs, &ys);
            let want = bits.mont_mul_batch(&xs, &ys);
            assert_eq!(got, want, "l={l} lanes={lanes}");
            assert_eq!(
                got[lanes - 1],
                scalar.mont_mul(&xs[lanes - 1], &ys[lanes - 1]),
                "l={l} lanes={lanes} scalar"
            );
            for e in c52.iter_mut() {
                assert_eq!(
                    e.mont_mul_batch(&xs, &ys),
                    want,
                    "cios52/{} l={l} lanes={lanes}",
                    e.kernel().name()
                );
            }
        }
    }
}

/// Deterministic regression: windowed batch exponentiation agrees
/// across backends and with the big-integer oracle at word-boundary
/// widths and at l = 256 (exponents kept short so the bit-sliced
/// oracle stays fast in debug builds).
#[test]
fn windowed_modexp_cross_backend_word_boundary_widths() {
    let mut rng = StdRng::seed_from_u64(0xC106);
    for l in [63usize, 64, 65, 256] {
        let params = random_safe_params(&mut rng, l);
        let n = params.n().clone();
        let ebits = l.min(72);
        for lanes in [1usize, 64] {
            let ms: Vec<Ubig> = (0..lanes)
                .map(|_| Ubig::random_below(&mut rng, &n))
                .collect();
            let es: Vec<Ubig> = (0..lanes)
                .map(|_| Ubig::random_bits(&mut rng, ebits))
                .collect();
            let mut cios = BatchModExp::new(CiosBatch::new(params.clone()));
            let got = cios.modexp_batch_auto(&ms, &es);
            let mut bits = BatchModExp::new(BitSlicedBatch::new(params.clone()));
            assert_eq!(got, bits.modexp_batch_auto(&ms, &es), "l={l} lanes={lanes}");
            for k in 0..lanes {
                assert_eq!(got[k], ms[k].modpow(&es[k], &n), "l={l} lane {k}");
            }
        }
    }
}

/// The CIOS backend has no hardware-safety constraint: at `tight`
/// widths (where the systolic array would drop its leftmost carry)
/// it must still match Algorithm 2 exactly.
#[test]
fn cios_handles_hardware_unsafe_tight_widths() {
    use montgomery_systolic::core::montgomery::mont_mul_alg2;
    let mut rng = StdRng::seed_from_u64(0xC107);
    for bits in [64usize, 65, 128] {
        // Force a modulus in the unsafe band N ≳ ⅔·2^l.
        let mut n = Ubig::pow2(bits) - Ubig::one();
        if n.is_even() {
            n = n - Ubig::one();
        }
        let params = MontgomeryParams::tight(&n);
        assert!(!params.is_hardware_safe(), "bits={bits}");
        let mut batch = CiosBatch::new(params.clone());
        let xs: Vec<Ubig> = (0..8).map(|_| random_operand(&mut rng, &params)).collect();
        let got = batch.mont_mul_batch(&xs, &xs);
        for k in 0..8 {
            assert_eq!(got[k], mont_mul_alg2(&params, &xs[k], &xs[k]), "lane {k}");
        }
        // The radix-2⁵² engine is equally unconstrained.
        for &kernel in Cios52Kernel::available() {
            let mut c52 = Cios52Batch::with_kernel(params.clone(), kernel);
            assert_eq!(
                c52.mont_mul_batch(&xs, &xs),
                got,
                "cios52/{} bits={bits}",
                kernel.name()
            );
        }
    }
}

/// Every member of `EngineKind::ALL` round-trips through its stable
/// name — so the *next* backend addition is caught automatically if
/// its `FromStr` arm is forgotten.
#[test]
fn every_engine_kind_roundtrips_through_fromstr() {
    for kind in EngineKind::ALL {
        assert_eq!(
            kind.name().parse::<EngineKind>().as_ref(),
            Ok(&kind),
            "{} must parse back to {:?}",
            kind.name(),
            kind
        );
    }
    assert_eq!(EngineKind::ALL.len(), EngineKind::available().len());
}

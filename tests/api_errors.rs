//! The typed-error contract of the serving API: every [`MmmError`]
//! variant the issue calls out is reachable through public `try_*` /
//! session entry points, and every `try_*` Ok path is bit-identical
//! to its legacy panicking twin — on both backends.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::batch::{mont_mul_many_with, try_mont_mul_many, BitSlicedBatch};
use montgomery_systolic::core::cios::CiosBatch;
use montgomery_systolic::core::config::{EngineConfig, WindowPolicy};
use montgomery_systolic::core::error::{MmmError, OperandBound};
use montgomery_systolic::core::expo_batch::{
    modexp_many_shared_with, modexp_many_with, try_modexp_many, try_modexp_many_shared, BatchModExp,
};
use montgomery_systolic::core::modgen::{random_operand, random_safe_params};
use montgomery_systolic::core::montgomery::MontgomeryParams;
use montgomery_systolic::core::{pool, BatchMontMul, EngineKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hardware-unsafe parameters: 251 at its tight width l=8 has
/// `3N − 1 = 752 > 2^9`, so the systolic array could drop a carry.
fn unsafe_params() -> MontgomeryParams {
    let p = MontgomeryParams::tight(&Ubig::from(251u64));
    assert!(!p.is_hardware_safe());
    p
}

#[test]
fn oversized_operand_reports_the_offending_lane_on_both_backends() {
    let mut rng = StdRng::seed_from_u64(501);
    let params = random_safe_params(&mut rng, 24);
    let mut xs: Vec<Ubig> = (0..5).map(|_| random_operand(&mut rng, &params)).collect();
    let ys = xs.clone();
    xs[3] = params.two_n(); // lane 3 violates the < 2N bound
    for kind in EngineKind::ALL {
        let mut engine = kind.build(params.clone());
        assert_eq!(
            engine.try_mont_mul_batch(&xs, &ys).unwrap_err(),
            MmmError::OperandOutOfRange {
                lane: 3,
                bound: OperandBound::TwoN
            },
            "{}",
            kind.name()
        );
        // The many-path reports the index in the caller's slice too.
        let config = EngineConfig::default().with_backend(kind);
        assert_eq!(
            try_mont_mul_many(&params, &xs, &ys, &config).unwrap_err(),
            MmmError::OperandOutOfRange {
                lane: 3,
                bound: OperandBound::TwoN
            },
            "{}",
            kind.name()
        );
    }
}

#[test]
fn oversized_lane_index_survives_sharding() {
    // With 2-lane shards, global lane 5 lives in shard 2 at local
    // index 1 — the error must still say 5.
    let mut rng = StdRng::seed_from_u64(502);
    let params = random_safe_params(&mut rng, 16);
    let mut ms: Vec<Ubig> = (0..7)
        .map(|_| Ubig::random_below(&mut rng, params.n()))
        .collect();
    ms[5] = params.n().clone();
    let es: Vec<Ubig> = (0..7).map(|_| Ubig::from(3u64)).collect();
    let config = EngineConfig::default().with_shard_lanes(2).unwrap();
    assert_eq!(
        try_modexp_many(&params, &ms, &es, &config).unwrap_err(),
        MmmError::OperandOutOfRange {
            lane: 5,
            bound: OperandBound::N
        }
    );
    assert_eq!(
        try_modexp_many_shared(&params, &ms, &Ubig::from(3u64), &config).unwrap_err(),
        MmmError::OperandOutOfRange {
            lane: 5,
            bound: OperandBound::N
        }
    );
}

#[test]
fn length_mismatch_and_empty_batch() {
    let mut rng = StdRng::seed_from_u64(503);
    let params = random_safe_params(&mut rng, 16);
    let xs: Vec<Ubig> = (0..3).map(|_| random_operand(&mut rng, &params)).collect();
    let mut engine = BitSlicedBatch::new(params.clone());
    assert_eq!(
        engine.try_mont_mul_batch(&xs, &xs[..2]).unwrap_err(),
        MmmError::LengthMismatch { left: 3, right: 2 }
    );
    assert_eq!(
        engine.try_mont_mul_batch(&[], &[]).unwrap_err(),
        MmmError::EmptyBatch
    );
    let mut cios = CiosBatch::new(params.clone());
    let mut out = Vec::new();
    assert_eq!(
        cios.try_mont_mul_batch_into(&[], &[], &mut out)
            .unwrap_err(),
        MmmError::EmptyBatch
    );
    let mut me = BatchModExp::new(CiosBatch::new(params.clone()));
    assert_eq!(
        me.try_modexp_batch(&[], &[]).unwrap_err(),
        MmmError::EmptyBatch
    );
    assert_eq!(
        me.try_modexp_batch(&xs[..2], &xs[..1]).unwrap_err(),
        MmmError::LengthMismatch { left: 2, right: 1 }
    );
    // A 65-lane direct batch call is too wide for one engine.
    let wide = vec![Ubig::one(); 65];
    assert_eq!(
        me.try_modexp_batch(&wide, &wide).unwrap_err(),
        MmmError::BatchTooWide {
            lanes: 65,
            max_lanes: 64
        }
    );
}

#[test]
fn bitsliced_checkout_on_hardware_unsafe_params_is_rejected() {
    let params = unsafe_params();
    assert!(matches!(
        pool::global().try_checkout_kind(&params, EngineKind::BitSliced),
        Err(MmmError::HardwareUnsafeWidth { l: 8 })
    ));
    assert!(matches!(
        BitSlicedBatch::try_new(params.clone()),
        Err(MmmError::HardwareUnsafeWidth { l: 8 })
    ));
    let ms = vec![Ubig::from(5u64)];
    let config = EngineConfig::default().with_backend(EngineKind::BitSliced);
    assert_eq!(
        try_modexp_many_shared(&params, &ms, &Ubig::from(3u64), &config).unwrap_err(),
        MmmError::HardwareUnsafeWidth { l: 8 }
    );
    // CIOS runs the very same tight parameters happily.
    let cios = EngineConfig::default();
    let got = try_modexp_many_shared(&params, &ms, &Ubig::from(3u64), &cios).unwrap();
    assert_eq!(
        got[0],
        Ubig::from(5u64).modpow(&Ubig::from(3u64), params.n())
    );
}

#[test]
fn parameter_construction_rejections_are_typed() {
    assert_eq!(
        MontgomeryParams::try_new(&Ubig::from(100u64), 8).unwrap_err(),
        MmmError::EvenModulus
    );
    assert_eq!(
        MontgomeryParams::try_new(&Ubig::from(257u64), 8).unwrap_err(),
        MmmError::WidthTooNarrow { bits: 9, l: 8 }
    );
    assert_eq!(
        MontgomeryParams::try_new(&Ubig::from(7u64), 2).unwrap_err(),
        MmmError::WidthTooSmall { l: 2 }
    );
    assert_eq!(
        MontgomeryParams::try_new(&Ubig::one(), 4).unwrap_err(),
        MmmError::ModulusTooSmall
    );
    assert!(MontgomeryParams::try_hardware_safe(&Ubig::from(251u64)).is_ok());
}

#[test]
fn bad_config_strings_and_values_are_typed() {
    let err = "coos".parse::<EngineKind>().unwrap_err();
    assert!(matches!(err, MmmError::Config(_)));
    assert!(err.to_string().contains("coos"), "{err}");
    assert_eq!(
        EngineConfig::default()
            .with_window(WindowPolicy::Fixed(9))
            .unwrap_err(),
        MmmError::WindowOutOfRange { window: 9 }
    );
    assert!(matches!(
        EngineConfig::default().with_pool_capacity(0).unwrap_err(),
        MmmError::Config(_)
    ));
    assert!(matches!(
        EngineConfig::default().with_shard_lanes(65).unwrap_err(),
        MmmError::Config(_)
    ));
    // MmmError is a real std error.
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.to_string().contains("invalid configuration"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `try_*` Ok paths are bit-identical to the legacy panicking
    /// entry points, lane for lane, on both backends — the wrapper
    /// layer may add types, never bits.
    #[test]
    fn try_ok_paths_match_legacy_entry_points(
        l in 10usize..60,
        seed in any::<u64>(),
        lane_sel in 0usize..4
    ) {
        let lanes = [1usize, 3, 63, 65][lane_sel];
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let xs: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &params)).collect();
        let ys: Vec<Ubig> = (0..lanes).map(|_| random_operand(&mut rng, &params)).collect();
        let ms: Vec<Ubig> = (0..lanes).map(|_| Ubig::random_below(&mut rng, params.n())).collect();
        let es: Vec<Ubig> = (0..lanes).map(|_| Ubig::random_bits(&mut rng, l)).collect();
        let e = Ubig::random_bits(&mut rng, l);
        for kind in EngineKind::ALL {
            let config = EngineConfig::default().with_backend(kind);
            prop_assert_eq!(
                try_mont_mul_many(&params, &xs, &ys, &config).unwrap(),
                mont_mul_many_with(&params, &xs, &ys, kind),
                "mont_mul {}", kind.name()
            );
            prop_assert_eq!(
                try_modexp_many(&params, &ms, &es, &config).unwrap(),
                modexp_many_with(&params, &ms, &es, kind),
                "modexp {}", kind.name()
            );
            prop_assert_eq!(
                try_modexp_many_shared(&params, &ms, &e, &config).unwrap(),
                modexp_many_shared_with(&params, &ms, &e, kind),
                "modexp shared {}", kind.name()
            );
        }
    }
}

//! Hardened-mode integration properties (DESIGN.md §12): the
//! constant-time schedule is a pure *schedule* change — on every
//! backend, for arbitrary widths/moduli/exponents, `Hardened` and
//! `Off` produce bit-identical modexp results; the blinded CRT
//! decryption path is bit-identical to the unblinded one; and a
//! mistyped `MMM_HARDENED` is a typed [`MmmError::Config`], never a
//! silent fallback.

use montgomery_systolic::core::config::{EngineConfig, HardeningMode};
use montgomery_systolic::core::expo_batch::{try_modexp_many, try_modexp_many_shared};
use montgomery_systolic::core::modgen::random_safe_params;
use montgomery_systolic::core::{EngineKind, MmmError};
use montgomery_systolic::rsa::{KeyedSession, RsaKeyPair};
use montgomery_systolic::Ubig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(kind: EngineKind, mode: HardeningMode) -> EngineConfig {
    EngineConfig::default()
        .with_backend(kind)
        .with_hardening(mode)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hardened ≡ Off, bit for bit, on every backend: randomized
    /// width, modulus, bases and exponents (including the degenerate
    /// all-zero and single-bit exponents the skip logic loves).
    #[test]
    fn hardened_modexp_is_bit_identical_on_every_backend(
        seed in any::<u64>(),
        l in 16usize..=96,
        lanes in 1usize..=6,
        zero_lane in any::<bool>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let ms: Vec<Ubig> = (0..lanes)
            .map(|_| Ubig::random_below(&mut rng, params.n()))
            .collect();
        let mut es: Vec<Ubig> = (0..lanes)
            .map(|_| Ubig::random_below(&mut rng, params.n()))
            .collect();
        if zero_lane {
            es[0] = Ubig::zero();
        }
        for kind in EngineKind::ALL {
            let off = try_modexp_many(&params, &ms, &es, &config(kind, HardeningMode::Off))
                .expect("off runs");
            let hard = try_modexp_many(&params, &ms, &es, &config(kind, HardeningMode::Hardened))
                .expect("hardened runs");
            prop_assert_eq!(&off, &hard, "per-lane exponents, {}", kind.name());
            let off = try_modexp_many_shared(&params, &ms, &es[0], &config(kind, HardeningMode::Off))
                .expect("off shared runs");
            let hard = try_modexp_many_shared(
                &params, &ms, &es[0], &config(kind, HardeningMode::Hardened))
                .expect("hardened shared runs");
            prop_assert_eq!(&off, &hard, "shared exponent, {}", kind.name());
        }
    }
}

/// The blinded hardened CRT decryption (message + exponent blinding in
/// [`montgomery_systolic::rsa::blinding`]) returns exactly what the
/// unblinded run returns — and both recover the plaintexts. Repeated
/// flushes exercise the square-and-refresh schedule.
#[test]
fn blinded_crt_round_trip_matches_unblinded_on_every_backend() {
    let mut rng = StdRng::seed_from_u64(0xB11D);
    let key = RsaKeyPair::generate(&mut rng, 48, 12);
    let ms: Vec<Ubig> = (0..7)
        .map(|_| Ubig::random_below(&mut rng, &key.n))
        .collect();
    let cs: Vec<Ubig> = ms.iter().map(|m| m.modpow(&key.e, &key.n)).collect();
    for kind in EngineKind::ALL {
        let off = KeyedSession::new(key.clone(), config(kind, HardeningMode::Off)).unwrap();
        let hard = KeyedSession::new(key.clone(), config(kind, HardeningMode::Hardened)).unwrap();
        for flush in 0..3 {
            let want = off.decrypt_crt(&cs).unwrap();
            let got = hard.decrypt_crt(&cs).unwrap();
            assert_eq!(
                want,
                ms,
                "{} flush {flush}: unblinded decrypts",
                kind.name()
            );
            assert_eq!(got, ms, "{} flush {flush}: blinded decrypts", kind.name());
        }
        // Input validation is unchanged by blinding: an out-of-range
        // ciphertext still bounces with its lane, it is never wrapped
        // into range by the mask.
        assert!(matches!(
            hard.decrypt_crt(&[cs[0].clone(), key.n.clone()])
                .unwrap_err(),
            MmmError::OperandOutOfRange { lane: 1, .. }
        ));
    }
}

/// `MMM_HARDENED` typos are a typed `MmmError::Config` naming the
/// variable — never a silent fallback to `Off`. (This test owns the
/// variable: no other test in this binary reads the environment.)
#[test]
fn hardened_env_typos_are_config_errors() {
    for typo in ["typo", "2", "yes!", " hardened"] {
        std::env::set_var("MMM_HARDENED", typo);
        let err = EngineConfig::from_env().unwrap_err();
        match err {
            MmmError::Config(msg) => {
                assert!(msg.contains("MMM_HARDENED"), "names the variable: {msg}");
                assert!(
                    msg.contains(typo.trim()) || msg.contains(typo),
                    "echoes the value: {msg}"
                );
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }
    for (ok, want) in [
        ("1", HardeningMode::Hardened),
        ("on", HardeningMode::Hardened),
        ("hardened", HardeningMode::Hardened),
        ("0", HardeningMode::Off),
        ("off", HardeningMode::Off),
    ] {
        std::env::set_var("MMM_HARDENED", ok);
        assert_eq!(EngineConfig::from_env().unwrap().hardening(), want, "{ok}");
    }
    std::env::remove_var("MMM_HARDENED");
    assert_eq!(
        EngineConfig::from_env().unwrap().hardening(),
        HardeningMode::Off,
        "absent variable keeps the default"
    );
}

//! Cross-engine equivalence: every Montgomery multiplication engine in
//! the workspace must agree bit-for-bit (same `R`) or up to the domain
//! constant (different `R`), across random operands and widths.
//!
//! This is the license for the benchmark methodology: results measured
//! on the cheap engines stand in for the expensive ones because the
//! engines are *proven interchangeable* here.

use montgomery_systolic::baselines::blum_paar;
use montgomery_systolic::bigint::{Ubig, WordMontgomery};
use montgomery_systolic::core::mmmc::GateEngine;
use montgomery_systolic::core::modgen::{random_operand, random_safe_params};
use montgomery_systolic::core::montgomery::{mont_mul_alg2, mont_spec};
use montgomery_systolic::core::wave::WaveMmmc;
use montgomery_systolic::core::{Mmmc, MontMul};
use montgomery_systolic::hdl::CarryStyle;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_same_r_engines_agree_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for l in [5usize, 8, 16, 24] {
        let params = random_safe_params(&mut rng, l);
        let mmmc_xor = Mmmc::build(l, CarryStyle::XorMux);
        let mmmc_maj = Mmmc::build(l, CarryStyle::Majority);
        let mut gate_xor = GateEngine::new(&mmmc_xor, params.clone());
        let mut gate_maj = GateEngine::new(&mmmc_maj, params.clone());
        let mut wave = WaveMmmc::new(params.clone());
        for _ in 0..6 {
            let x = random_operand(&mut rng, &params);
            let y = random_operand(&mut rng, &params);
            let reference = mont_mul_alg2(&params, &x, &y);
            assert_eq!(wave.mont_mul(&x, &y), reference, "wave l={l}");
            assert_eq!(gate_xor.mont_mul(&x, &y), reference, "gate/XorMux l={l}");
            assert_eq!(gate_maj.mont_mul(&x, &y), reference, "gate/Majority l={l}");
        }
    }
}

#[test]
fn different_r_engines_agree_after_domain_compensation() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE + 1);
    for l in [8usize, 16, 32] {
        let params = random_safe_params(&mut rng, l);
        let n = params.n().clone();
        let x = random_operand(&mut rng, &params);
        let y = random_operand(&mut rng, &params);
        let plain = (&x * &y).rem(&n);

        // Our design: xy·2^{-(l+2)}; recover by multiplying 2^{l+2}.
        let ours = mont_mul_alg2(&params, &x, &y);
        assert_eq!(ours.modmul(&Ubig::pow2(l + 2), &n), plain, "ours l={l}");

        // Blum–Paar: xy·2^{-(l+3)}.
        let bp = blum_paar::bp_mont_mul(&params, &x, &y);
        assert_eq!(bp.modmul(&Ubig::pow2(l + 3), &n), plain, "BP l={l}");

        // Word-level CIOS: xy·2^{-64·s}.
        let ctx = WordMontgomery::new(&n);
        let xr = x.rem(&n);
        let yr = y.rem(&n);
        let cios = ctx.mont_mul(&xr, &yr);
        assert_eq!(cios.modmul(&ctx.r(), &n), plain, "CIOS l={l}");

        // And the analytic specification ties them all together.
        assert_eq!(ours.rem(&n), mont_spec(&params, &x, &y, &params.r()));
    }
}

#[test]
fn exponentiation_identical_across_engines() {
    use montgomery_systolic::core::expo::ModExp;
    use montgomery_systolic::core::traits::SoftwareEngine;
    let mut rng = StdRng::seed_from_u64(0xC0FFEE + 2);
    let l = 12;
    let params = random_safe_params(&mut rng, l);
    let mmmc = Mmmc::build(l, CarryStyle::XorMux);
    for _ in 0..4 {
        let m = Ubig::random_below(&mut rng, params.n());
        let e = Ubig::random_bits(&mut rng, l);
        let e = if e.is_zero() { Ubig::one() } else { e };
        let want = m.modpow(&e, params.n());
        let soft = ModExp::new(SoftwareEngine::new(params.clone())).modexp(&m, &e);
        let wave = ModExp::new(WaveMmmc::new(params.clone())).modexp(&m, &e);
        let gate = ModExp::new(GateEngine::new(&mmmc, params.clone())).modexp(&m, &e);
        assert_eq!(soft, want);
        assert_eq!(wave, want);
        assert_eq!(gate, want);
    }
}

#[test]
fn wave_and_gate_cycle_counts_identical() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE + 3);
    for l in [5usize, 9, 17] {
        let params = random_safe_params(&mut rng, l);
        let mmmc = Mmmc::build(l, CarryStyle::XorMux);
        let mut gate = GateEngine::new(&mmmc, params.clone());
        let mut wave = WaveMmmc::new(params.clone());
        let x = random_operand(&mut rng, &params);
        let y = random_operand(&mut rng, &params);
        let (_, gc) = gate.mont_mul_counted(&x, &y);
        let (_, wc) = wave.mont_mul_counted(&x, &y);
        assert_eq!(gc, wc, "l={l}");
        assert_eq!(gc, (3 * l + 4) as u64, "l={l}");
    }
}

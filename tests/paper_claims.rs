//! The paper's headline claims, asserted end-to-end through the public
//! API — each test names the section it reproduces.

use montgomery_systolic::core::array::SystolicArray;
use montgomery_systolic::core::cells::CellCost;
use montgomery_systolic::core::modgen::{random_operand, random_safe_params};
use montgomery_systolic::core::{cost, Mmmc};
use montgomery_systolic::fpga::{lut::map_luts, FpgaReport, SlicePacker, VirtexETiming};
use montgomery_systolic::hdl::{AreaReport, CarryStyle, UnitDelay};
use montgomery_systolic::Ubig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §4.4: "the total number of clock cycles for completing one modular
/// Montgomery multiplication equals 3l + 4" — measured, not assumed.
#[test]
fn claim_3l_plus_4_cycles_measured() {
    let mut rng = StdRng::seed_from_u64(1);
    for l in [4usize, 8, 13, 21, 32] {
        let params = random_safe_params(&mut rng, l);
        let mmmc = Mmmc::build(l, CarryStyle::XorMux);
        let x = random_operand(&mut rng, &params);
        let y = random_operand(&mut rng, &params);
        let run = mmmc.run(&x, &y, params.n());
        assert_eq!(run.cycles, (3 * l + 4) as u64, "l={l}");
    }
}

/// §4.3: the array area formula (5l−3)XOR + (7l−7)AND + (4l−5)OR —
/// leading coefficients reproduced exactly by the generated netlist
/// under the majority FA decomposition.
#[test]
fn claim_area_formula() {
    for l in [8usize, 64, 512] {
        let arr = SystolicArray::build(l, CarryStyle::Majority);
        let census = AreaReport::of(&arr.netlist);
        let paper = CellCost::paper_formula(l);
        assert!(census.xor.abs_diff(paper.xor) <= 1, "XOR l={l}");
        assert!(census.and.abs_diff(paper.and) <= 3, "AND l={l}");
        assert!(census.or.abs_diff(paper.or) <= 2, "OR l={l}");
    }
}

/// §4.3: "The critical path is the same as the critical path of one
/// regular cell and it is independent of the bit length of the
/// operands."
#[test]
fn claim_constant_critical_path() {
    let mut gate_levels = Vec::new();
    let mut lut_levels = Vec::new();
    for l in [4usize, 16, 64, 256] {
        let arr = SystolicArray::build(l, CarryStyle::XorMux);
        gate_levels.push(
            montgomery_systolic::hdl::timing::critical_path(&arr.netlist, &UnitDelay)
                .unwrap()
                .levels,
        );
        lut_levels.push(map_luts(&arr.netlist).depth);
    }
    assert!(
        gate_levels.windows(2).all(|w| w[0] == w[1]),
        "{gate_levels:?}"
    );
    assert!(
        lut_levels.windows(2).all(|w| w[0] == w[1]),
        "{lut_levels:?}"
    );
}

/// Table 2's claim in prose: "the clock frequency is independent from
/// the bit length" — across a 32× width range the predicted period
/// varies by under 15%.
#[test]
fn claim_flat_clock_frequency() {
    let packer = SlicePacker::default();
    let timing = VirtexETiming::default();
    let periods: Vec<f64> = [32usize, 128, 1024]
        .iter()
        .map(|&l| {
            let mmmc = Mmmc::build(l, CarryStyle::XorMux);
            FpgaReport::analyze(&mmmc.netlist, l, &packer, &timing).period_ns
        })
        .collect();
    let min = periods.iter().cloned().fold(f64::MAX, f64::min);
    let max = periods.iter().cloned().fold(f64::MIN, f64::max);
    assert!((max - min) / min < 0.15, "{periods:?}");
}

/// §2/§3: Walter's bound — with 4N < R = 2^{l+2} and inputs < 2N, the
/// output stays < 2N, so multiplications chain with no subtraction.
/// Run a long chain and check the bound never breaks.
#[test]
fn claim_no_final_subtraction_needed() {
    let mut rng = StdRng::seed_from_u64(2);
    let l = 24;
    let params = random_safe_params(&mut rng, l);
    let mut engine = montgomery_systolic::core::wave::WaveMmmc::new(params.clone());
    use montgomery_systolic::core::MontMul;
    let mut t = random_operand(&mut rng, &params);
    let u = random_operand(&mut rng, &params);
    for step in 0..200 {
        t = engine.mont_mul(&t, &u);
        assert!(params.check_operand(&t), "bound broken at step {step}");
    }
}

/// Eq. (10): measured exponentiation cycles stay within the closed-form
/// bounds for random exponents (not just the extremes).
#[test]
fn claim_eq10_random_exponents() {
    use montgomery_systolic::core::expo::ModExp;
    use montgomery_systolic::core::wave::WaveMmmc;
    let mut rng = StdRng::seed_from_u64(3);
    for l in [16usize, 32] {
        let (lo, hi) = cost::modexp_bounds(l);
        let params = random_safe_params(&mut rng, l);
        for _ in 0..5 {
            let m = Ubig::random_below(&mut rng, params.n());
            let mut e = Ubig::random_bits(&mut rng, l);
            e.set_bit(l - 1, true); // full-length exponent, as Eq. 10 assumes
            let mut me = ModExp::new(WaveMmmc::new(params.clone()));
            let r = me.modexp(&m, &e);
            assert_eq!(r, m.modpow(&e, params.n()));
            let stats = me.stats();
            let measured = cost::precompute_cycles(l)
                + (stats.squarings + stats.multiplications) * cost::mmm_cycles(l)
                + cost::postprocess_cycles(l);
            assert!(measured <= hi, "l={l}: {measured} > {hi}");
            // One in-loop mult of slack below the lower bound
            // (single-bit exponents do l−1 of the bound's nominal l).
            assert!(
                measured + 2 * cost::mmm_cycles(l) >= lo,
                "l={l}: {measured} << {lo}"
            );
        }
    }
}

/// §2: the improvement over Blum–Paar — n+2 iterations instead of n+3,
/// and a shorter PE critical path.
#[test]
fn claim_beats_blum_paar() {
    use montgomery_systolic::baselines::blum_paar;
    for l in [32usize, 1024] {
        assert!(cost::mmm_cycles(l) < blum_paar::bp_mmm_cycles(l));
    }
    let rows = mmm_bench::compare::compute(&[256]);
    let ours = rows
        .iter()
        .find(|r| r.design.starts_with("this work"))
        .unwrap();
    let bp = rows
        .iter()
        .find(|r| r.design.starts_with("Blum-Paar"))
        .unwrap();
    assert!(ours.tmmm_us < bp.tmmm_us);
    assert!(ours.texp_ms < bp.texp_ms);
}

//! Cross-engine property tests for the bit-sliced batch engine: every
//! lane of a batch must be **bit-identical** to a solo run of the
//! packed wave model, across random widths spanning `u64` word
//! boundaries and partial batches — and the batched exponentiator must
//! agree with the big-integer oracle.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::batch::{mont_mul_many, BitSlicedBatch, SequentialBatch};
use montgomery_systolic::core::expo_batch::BatchModExp;
use montgomery_systolic::core::modgen::random_safe_params;
use montgomery_systolic::core::wave_packed::PackedMmmc;
use montgomery_systolic::core::{BatchMontMul, MontMul};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_lane_bit_identical_to_solo_packed(
        // Widths spanning the u64 word boundary (position vectors are
        // l + 2 bits, so l = 62 puts the top cell at a word edge).
        l in 30usize..100,
        seed in any::<u64>(),
        lane_sel in 0usize..4
    ) {
        let lanes = [1usize, 3, 63, 64][lane_sel];
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let xs: Vec<Ubig> = (0..lanes)
            .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
            .collect();
        let ys: Vec<Ubig> = (0..lanes)
            .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
            .collect();

        let mut batch = BitSlicedBatch::new(params.clone());
        let got = batch.mont_mul_batch(&xs, &ys);

        let mut solo = PackedMmmc::new(params.clone());
        for k in 0..lanes {
            let want = solo.mont_mul(&xs[k], &ys[k]);
            prop_assert_eq!(
                &got[k], &want,
                "lane {} of {} diverged from solo packed run at l={}", k, lanes, l
            );
        }
    }

    #[test]
    fn sharded_many_lanes_match_sequential_adapter(
        l in 10usize..40,
        seed in any::<u64>(),
        count in 1usize..150
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let xs: Vec<Ubig> = (0..count)
            .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
            .collect();
        let ys: Vec<Ubig> = (0..count)
            .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
            .collect();
        let got = mont_mul_many(&params, &xs, &ys);
        let mut seq = SequentialBatch::new(PackedMmmc::new(params.clone()));
        let want = seq.mont_mul_batch(&xs, &ys);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn batch_modexp_matches_ubig_modpow(
        l in 16usize..48,
        seed in any::<u64>(),
        lanes in 1usize..20
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let n = params.n().clone();
        let ms: Vec<Ubig> = (0..lanes)
            .map(|_| Ubig::random_below(&mut rng, &n))
            .collect();
        // Per-lane exponents of wildly different lengths (including 0).
        let es: Vec<Ubig> = (0..lanes)
            .map(|k| Ubig::random_bits(&mut rng, (k * 13) % (l + 1)))
            .collect();
        let mut me = BatchModExp::new(BitSlicedBatch::new(params.clone()));
        let got = me.modexp_batch(&ms, &es);
        for k in 0..lanes {
            prop_assert_eq!(
                &got[k],
                &ms[k].modpow(&es[k], &n),
                "lane {} (exponent bits {})", k, es[k].bit_len()
            );
        }
    }
}

/// Deterministic regression: the exact widths where the packed model's
/// word handling historically needed edge patches (62–66 around the
/// `l + 2 = 64` boundary), all four partial batch sizes each.
#[test]
fn word_boundary_widths_all_partial_batch_sizes() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    for l in [62usize, 63, 64, 65, 66, 126, 127, 128] {
        let params = random_safe_params(&mut rng, l);
        let mut batch = BitSlicedBatch::new(params.clone());
        let mut solo = PackedMmmc::new(params.clone());
        for lanes in [1usize, 3, 63, 64] {
            let xs: Vec<Ubig> = (0..lanes)
                .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
                .collect();
            let ys: Vec<Ubig> = (0..lanes)
                .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
                .collect();
            let got = batch.mont_mul_batch(&xs, &ys);
            for k in 0..lanes {
                assert_eq!(
                    got[k],
                    solo.mont_mul(&xs[k], &ys[k]),
                    "l={l} lanes={lanes} lane={k}"
                );
            }
        }
    }
}

//! Cross-engine property tests for the bit-sliced batch engine: every
//! lane of a batch must be **bit-identical** to a solo run of the
//! packed wave model, across random widths spanning `u64` word
//! boundaries and partial batches — the batched exponentiators
//! (binary and fixed-window) must agree with the big-integer oracle —
//! and batched CRT decryption must match the scalar CRT path lane for
//! lane.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::batch::{mont_mul_many, BitSlicedBatch, SequentialBatch};
use montgomery_systolic::core::expo_batch::BatchModExp;
use montgomery_systolic::core::modgen::random_safe_params;
use montgomery_systolic::core::wave_packed::PackedMmmc;
use montgomery_systolic::core::{BatchMontMul, MontMul};
use montgomery_systolic::rsa::{decrypt_crt, decrypt_crt_batch, RsaKeyPair};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_lane_bit_identical_to_solo_packed(
        // Widths spanning the u64 word boundary (position vectors are
        // l + 2 bits, so l = 62 puts the top cell at a word edge).
        l in 30usize..100,
        seed in any::<u64>(),
        lane_sel in 0usize..4
    ) {
        let lanes = [1usize, 3, 63, 64][lane_sel];
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let xs: Vec<Ubig> = (0..lanes)
            .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
            .collect();
        let ys: Vec<Ubig> = (0..lanes)
            .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
            .collect();

        let mut batch = BitSlicedBatch::new(params.clone());
        let got = batch.mont_mul_batch(&xs, &ys);

        let mut solo = PackedMmmc::new(params.clone());
        for k in 0..lanes {
            let want = solo.mont_mul(&xs[k], &ys[k]);
            prop_assert_eq!(
                &got[k], &want,
                "lane {} of {} diverged from solo packed run at l={}", k, lanes, l
            );
        }
    }

    #[test]
    fn sharded_many_lanes_match_sequential_adapter(
        l in 10usize..40,
        seed in any::<u64>(),
        count in 1usize..150
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let xs: Vec<Ubig> = (0..count)
            .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
            .collect();
        let ys: Vec<Ubig> = (0..count)
            .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
            .collect();
        let got = mont_mul_many(&params, &xs, &ys);
        let mut seq = SequentialBatch::new(PackedMmmc::new(params.clone()));
        let want = seq.mont_mul_batch(&xs, &ys);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn windowed_batch_modexp_matches_ubig_modpow(
        // Widths spanning the u64 word boundary, every partial batch
        // size, every practical window width.
        l in 30usize..100,
        seed in any::<u64>(),
        lane_sel in 0usize..4,
        w in 1usize..=6
    ) {
        let lanes = [1usize, 3, 63, 64][lane_sel];
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let n = params.n().clone();
        let ms: Vec<Ubig> = (0..lanes)
            .map(|_| Ubig::random_below(&mut rng, &n))
            .collect();
        // Per-lane exponents of wildly different lengths (including 0).
        let es: Vec<Ubig> = (0..lanes)
            .map(|k| Ubig::random_bits(&mut rng, (k * 17) % (l + 1)))
            .collect();
        let mut me = BatchModExp::new(BitSlicedBatch::new(params.clone()));
        let got = me.modexp_batch_windowed(&ms, &es, w);
        for k in 0..lanes {
            prop_assert_eq!(
                &got[k],
                &ms[k].modpow(&es[k], &n),
                "w={} lane {} (exponent bits {})", w, k, es[k].bit_len()
            );
        }
        // The stats ledger must stay internally consistent.
        let s = me.stats();
        prop_assert_eq!(
            s.total_batch_muls,
            s.squarings + s.multiplications + s.table_muls + 2
        );
    }

    #[test]
    fn crt_batch_decrypt_matches_scalar_crt(
        // Modulus sizes whose half-width engines straddle the u64
        // word boundary (primes of 31–66 bits).
        bits_sel in 0usize..5,
        seed in any::<u64>(),
        lane_sel in 0usize..4
    ) {
        let bits = [62usize, 96, 124, 128, 132][bits_sel];
        let lanes = [1usize, 3, 63, 64][lane_sel];
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = RsaKeyPair::generate(&mut rng, bits, 8);
        let cs: Vec<Ubig> = (0..lanes)
            .map(|_| Ubig::random_below(&mut rng, &kp.n))
            .collect();
        let got = decrypt_crt_batch(&kp, &cs);
        for k in 0..lanes {
            prop_assert_eq!(
                &got[k],
                &decrypt_crt(&kp, &cs[k]),
                "lane {} of {} at {} key bits", k, lanes, bits
            );
        }
    }

    #[test]
    fn batch_modexp_matches_ubig_modpow(
        l in 16usize..48,
        seed in any::<u64>(),
        lanes in 1usize..20
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = random_safe_params(&mut rng, l);
        let n = params.n().clone();
        let ms: Vec<Ubig> = (0..lanes)
            .map(|_| Ubig::random_below(&mut rng, &n))
            .collect();
        // Per-lane exponents of wildly different lengths (including 0).
        let es: Vec<Ubig> = (0..lanes)
            .map(|k| Ubig::random_bits(&mut rng, (k * 13) % (l + 1)))
            .collect();
        let mut me = BatchModExp::new(BitSlicedBatch::new(params.clone()));
        let got = me.modexp_batch(&ms, &es);
        for k in 0..lanes {
            prop_assert_eq!(
                &got[k],
                &ms[k].modpow(&es[k], &n),
                "lane {} (exponent bits {})", k, es[k].bit_len()
            );
        }
    }
}

/// Deterministic regression: the windowed batched exponentiator at
/// the exact word-boundary widths, full-length per-lane exponents,
/// partial and full batches, auto-picked window.
#[test]
fn windowed_modexp_word_boundary_widths() {
    let mut rng = StdRng::seed_from_u64(0xF1D0);
    for l in [62usize, 63, 64, 65, 66, 126, 128] {
        let params = random_safe_params(&mut rng, l);
        let n = params.n().clone();
        for lanes in [1usize, 3, 64] {
            let ms: Vec<Ubig> = (0..lanes)
                .map(|_| Ubig::random_below(&mut rng, &n))
                .collect();
            let es: Vec<Ubig> = (0..lanes).map(|_| Ubig::random_bits(&mut rng, l)).collect();
            let mut me = BatchModExp::new(BitSlicedBatch::new(params.clone()));
            let got = me.modexp_batch_auto(&ms, &es);
            for k in 0..lanes {
                assert_eq!(
                    got[k],
                    ms[k].modpow(&es[k], &n),
                    "l={l} lanes={lanes} lane={k}"
                );
            }
        }
    }
}

/// Deterministic regression: the exact widths where the packed model's
/// word handling historically needed edge patches (62–66 around the
/// `l + 2 = 64` boundary), all four partial batch sizes each.
#[test]
fn word_boundary_widths_all_partial_batch_sizes() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    for l in [62usize, 63, 64, 65, 66, 126, 127, 128] {
        let params = random_safe_params(&mut rng, l);
        let mut batch = BitSlicedBatch::new(params.clone());
        let mut solo = PackedMmmc::new(params.clone());
        for lanes in [1usize, 3, 63, 64] {
            let xs: Vec<Ubig> = (0..lanes)
                .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
                .collect();
            let ys: Vec<Ubig> = (0..lanes)
                .map(|_| montgomery_systolic::core::modgen::random_operand(&mut rng, &params))
                .collect();
            let got = batch.mont_mul_batch(&xs, &ys);
            for k in 0..lanes {
                assert_eq!(
                    got[k],
                    solo.mont_mul(&xs[k], &ys[k]),
                    "l={l} lanes={lanes} lane={k}"
                );
            }
        }
    }
}

//! Multi-threaded stress for the serving front-end: concurrent
//! producers hammering one `Server` over rotating keys and both
//! submit paths, on **every** backend.
//!
//! The properties under test are the serving layer's contract:
//!
//! * **bit-identity** — every response equals the
//!   `decrypt_crt_batch` oracle's answer for its ciphertext,
//!   regardless of which worker flushed it, how requests interleaved
//!   across shards, or which submit path admitted them;
//! * **exactly one response** — every admitted request resolves its
//!   ticket exactly once (waiting consumes the ticket, so at most
//!   once is structural; the test proves at least once by joining
//!   every producer);
//! * **order independence** — shards are keyed by `(key, op)`, so
//!   interleaved traffic for different keys must never cross-talk.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::config::EngineConfig;
use montgomery_systolic::core::EngineKind;
use montgomery_systolic::rsa::{decrypt_crt_batch, BatchOp, RsaKeyPair, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn keypair(bits: usize, seed: u64) -> RsaKeyPair {
    let mut rng = StdRng::seed_from_u64(seed);
    RsaKeyPair::generate(&mut rng, bits, 12)
}

const PRODUCERS: usize = 4;
const PER_PRODUCER: usize = 24;

#[test]
fn concurrent_producers_rotating_keys_both_paths_all_backends() {
    let keys = [keypair(64, 700), keypair(64, 701)];
    for kind in EngineKind::ALL {
        let config = EngineConfig::default()
            .with_backend(kind)
            .with_workers(2)
            .unwrap()
            .with_flush_deadline(Duration::from_millis(1))
            .with_queue_bound(64)
            .unwrap();
        let mut builder = Server::builder(config);
        let key_ids: Vec<_> = keys
            .iter()
            .map(|k| builder.add_key(k.clone()).unwrap())
            .collect();
        let server = builder.build().unwrap();

        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let server = &server;
                let keys = &keys;
                let key_ids = &key_ids;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(7000 + p as u64);
                    for i in 0..PER_PRODUCER {
                        // Rotate keys so shards for both keys are live
                        // at once, and alternate the two submit paths.
                        let which = (p + i) % keys.len();
                        let key = &keys[which];
                        let m = Ubig::random_below(&mut rng, &key.n);
                        let c = m.modpow(&key.e, &key.n);
                        let want = decrypt_crt_batch(key, std::slice::from_ref(&c));
                        assert_eq!(want, vec![m], "oracle roundtrip");
                        let ticket = if i % 2 == 0 {
                            server
                                .try_submit(key_ids[which], BatchOp::DecryptCrt, c)
                                .expect("queue bound 64 cannot fill with 4 producers")
                        } else {
                            server
                                .submit(
                                    key_ids[which],
                                    BatchOp::DecryptCrt,
                                    c,
                                    Duration::from_secs(30),
                                )
                                .expect("blocking submit within budget")
                        };
                        // Exactly-one-response: `wait` consumes the
                        // ticket and must deliver the oracle's bits.
                        assert_eq!(
                            ticket.wait(),
                            Ok(want.into_iter().next().unwrap()),
                            "producer {p}, request {i}, backend {}",
                            kind.name()
                        );
                    }
                });
            }
        });

        let stats = server.stats();
        let total = (PRODUCERS * PER_PRODUCER) as u64;
        assert_eq!(stats.submitted, total, "{}", kind.name());
        assert_eq!(stats.completed_ok, total, "{}", kind.name());
        assert_eq!(stats.completed_err, 0, "{}", kind.name());
        assert_eq!(stats.rejected_invalid, 0, "{}", kind.name());
        assert_eq!(stats.worker_restarts, 0, "{}", kind.name());
        assert!(
            stats.fill_flushes + stats.deadline_flushes + stats.drain_flushes > 0,
            "something must have flushed ({})",
            kind.name()
        );
        server.shutdown();
    }
}

#[test]
fn singleton_is_flushed_by_deadline_not_starved() {
    // One lonely request must not wait for 63 shard peers: the
    // deadline flush answers it in deadline + MAX_PARK + epsilon, far
    // below the multi-second starvation a fill-only policy would show.
    let key = keypair(64, 710);
    let config = EngineConfig::default()
        .with_workers(1)
        .unwrap()
        .with_flush_deadline(Duration::from_millis(5));
    let mut builder = Server::builder(config);
    let id = builder.add_key(key.clone()).unwrap();
    let server = builder.build().unwrap();
    let m = Ubig::from(4242u64);
    let c = m.modpow(&key.e, &key.n);
    let t0 = Instant::now();
    let ticket = server.try_submit(id, BatchOp::DecryptCrt, c).unwrap();
    assert_eq!(ticket.wait(), Ok(m));
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "singleton took {:?}",
        t0.elapsed()
    );
    let stats = server.stats();
    assert_eq!(stats.deadline_flushes, 1, "flushed by deadline");
    assert_eq!(stats.fill_flushes, 0);
    server.shutdown();
}

#[test]
fn full_shard_flushes_on_fill_without_waiting_for_deadline() {
    // With a deliberately huge deadline, only the fill trigger can
    // explain a prompt answer for a full shard of requests.
    let key = keypair(64, 711);
    let lanes = 4;
    let config = EngineConfig::default()
        .with_workers(1)
        .unwrap()
        .with_shard_lanes(lanes)
        .unwrap()
        .with_flush_deadline(Duration::from_secs(600));
    let mut builder = Server::builder(config);
    let id = builder.add_key(key.clone()).unwrap();
    let server = builder.build().unwrap();
    let mut rng = StdRng::seed_from_u64(712);
    let ms: Vec<Ubig> = (0..lanes)
        .map(|_| Ubig::random_below(&mut rng, &key.n))
        .collect();
    let tickets: Vec<_> = ms
        .iter()
        .map(|m| {
            let c = m.modpow(&key.e, &key.n);
            server.try_submit(id, BatchOp::DecryptCrt, c).unwrap()
        })
        .collect();
    for (ticket, want) in tickets.into_iter().zip(&ms) {
        assert_eq!(ticket.wait(), Ok(want.clone()));
    }
    let stats = server.stats();
    assert_eq!(stats.fill_flushes, 1, "one full-shard flush");
    assert_eq!(stats.deadline_flushes, 0, "deadline never fired");
    server.shutdown();
}

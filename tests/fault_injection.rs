//! Failure injection: the verification infrastructure must actually be
//! able to *fail*. These tests mutate netlists and check that the
//! equivalence/structural checks catch every injected fault — guarding
//! against a test suite that silently passes everything.

use montgomery_systolic::core::modgen::{random_operand, random_safe_params};
use montgomery_systolic::core::montgomery::{mont_mul_alg2, MontgomeryParams};
use montgomery_systolic::core::Mmmc;
use montgomery_systolic::hdl::netlist::GateKind;
use montgomery_systolic::hdl::{CarryStyle, Netlist, Simulator};
use montgomery_systolic::Ubig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one multiplication on a (possibly mutated) MMMC netlist.
fn run_mutated(mmmc: &Mmmc, netlist: &Netlist, x: &Ubig, y: &Ubig, n: &Ubig) -> Option<Ubig> {
    let l = mmmc.l;
    let mut sim = Simulator::new(netlist).ok()?;
    sim.set_bus_bits(&mmmc.x_bus, &x.to_bits_le(l + 1));
    sim.set_bus_bits(&mmmc.y_bus, &y.to_bits_le(l + 1));
    sim.set_bus_bits(&mmmc.n_bus, &n.to_bits_le(l));
    sim.set(mmmc.start, true);
    sim.step();
    sim.set(mmmc.start, false);
    for _ in 0..(4 * l + 64) {
        sim.settle();
        if sim.get(mmmc.done) {
            return Some(Ubig::from_bits_le(&sim.get_bus_bits(&mmmc.result)));
        }
        sim.step();
    }
    None
}

#[test]
fn gate_kind_faults_are_detected() {
    // Flip each of a sample of array gates from XOR->OR (a classic
    // wiring mistake); the multiplication result must change for at
    // least one operand pair — i.e. our oracle has teeth.
    //
    // Deterministic on purpose: the modulus is the largest
    // hardware-safe value at l=6 (N=43) and the stimulus is a fixed
    // operand grid, so the detection count cannot drift with the RNG
    // stream backing `random_safe_params`.
    let l = 6;
    let n = MontgomeryParams::max_safe_modulus(l);
    let params = MontgomeryParams::new(&n, l);
    let mmmc = Mmmc::build(l, CarryStyle::XorMux);

    // Grid of corner and spread operands (all < 2N = 86), crossed with
    // itself: boundary values exercise the carry chains hardest.
    let two_n = params.two_n().to_u64().unwrap();
    let pool: Vec<u64> = [0, 1, 2, 3, 5, 21, 27, 42, 43, 44, 63, 64, 73, 84, 85]
        .into_iter()
        .filter(|&v| v < two_n)
        .collect();
    let cases: Vec<(Ubig, Ubig)> = pool
        .iter()
        .flat_map(|&x| pool.iter().map(move |&y| (Ubig::from(x), Ubig::from(y))))
        .collect();

    let xor_gates: Vec<usize> = mmmc
        .netlist
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| g.kind == GateKind::Xor)
        .map(|(i, _)| i)
        .collect();
    assert!(xor_gates.len() > 10, "expect plenty of XORs");

    let mut detected = 0;
    let mut injected = 0;
    for &gi in xor_gates.iter().step_by(3) {
        let mut mutated = mmmc.netlist.clone();
        mutated.gates_mut()[gi].kind = GateKind::Or;
        injected += 1;
        let caught = cases.iter().any(|(x, y)| {
            let want = mont_mul_alg2(&params, x, y);
            match run_mutated(&mmmc, &mutated, x, y, params.n()) {
                Some(got) => got != want,
                None => true, // circuit hung: also detected
            }
        });
        if caught {
            detected += 1;
        }
    }
    // XOR->OR differs only on the (1,1) input pattern, and for a few
    // gates that pattern is unreachable in correct operation — most
    // notably the leftmost cell's t_{l+1} XOR, where carry ∧ c1_in is
    // exactly the overflow condition hardware-safe moduli exclude.
    // Exhaustive operand enumeration (`mmm-bench --bin faultprobe`)
    // shows a small number of these faults are *redundant* at this
    // modulus: allow three misses out of the sampled eleven.
    assert!(
        detected + 3 >= injected,
        "only {detected}/{injected} injected faults detected"
    );
}

#[test]
fn stuck_at_zero_on_carry_wire_detected() {
    let mut rng = StdRng::seed_from_u64(8);
    let l = 6;
    let params = random_safe_params(&mut rng, l);
    let mmmc = Mmmc::build(l, CarryStyle::XorMux);

    // Stuck-at-0: redirect the D input of each carry register to the
    // constant zero signal.
    let mut any_detected = false;
    for ff_idx in 0..mmmc.netlist.dffs().len() {
        let mut mutated = mmmc.netlist.clone();
        let zero = mutated.zero();
        mutated.dffs_mut()[ff_idx].d = Some(zero);
        let x = random_operand(&mut rng, &params);
        let y = random_operand(&mut rng, &params);
        let want = mont_mul_alg2(&params, &x, &y);
        let got = run_mutated(&mmmc, &mutated, &x, &y, params.n());
        if got != Some(want) {
            any_detected = true;
            break;
        }
    }
    assert!(any_detected, "stuck-at faults must be detectable");
}

#[test]
fn combinational_loop_rejected_not_simulated() {
    let mut nl = Netlist::new();
    let a = nl.input("a");
    let g1 = nl.and2(a, a);
    let g2 = nl.or2(g1, a);
    // Back edge: g1's second input becomes g2 — a genuine loop.
    nl.gates_mut()[0].inputs[1] = g2;
    assert!(Simulator::new(&nl).is_err(), "loops must be rejected");
}

#[test]
#[should_panic(expected = "unconnected")]
fn unconnected_flip_flop_rejected() {
    let mut nl = Netlist::new();
    let _orphan = nl.dff_placeholder(false);
    let _ = Simulator::new(&nl); // lint failure panics
}

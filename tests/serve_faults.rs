//! The serving-layer fault-injection suite: every production failure
//! shape — worker panics, flush stalls, queue-full storms, shutdown
//! under load — driven through `serve::faults` on **every** backend,
//! asserting the contract the front-end exists for: failures surface
//! as **typed per-request errors**, never as wrong answers,
//! deadlocks, or lost responses.

use montgomery_systolic::bigint::Ubig;
use montgomery_systolic::core::config::EngineConfig;
use montgomery_systolic::core::error::MmmError;
use montgomery_systolic::core::EngineKind;
use montgomery_systolic::rsa::{BatchOp, KeyId, RsaKeyPair, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn keypair(bits: usize, seed: u64) -> RsaKeyPair {
    let mut rng = StdRng::seed_from_u64(seed);
    RsaKeyPair::generate(&mut rng, bits, 12)
}

fn server_on(kind: EngineKind, key: &RsaKeyPair) -> (Server, KeyId) {
    let config = EngineConfig::default()
        .with_backend(kind)
        .with_workers(2)
        .unwrap()
        .with_flush_deadline(Duration::from_millis(1));
    let mut builder = Server::builder(config);
    let id = builder.add_key(key.clone()).unwrap();
    (builder.build().unwrap(), id)
}

/// Encrypts `count` seeded plaintexts under `key`.
fn traffic(key: &RsaKeyPair, seed: u64, count: usize) -> Vec<(Ubig, Ubig)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let m = Ubig::random_below(&mut rng, &key.n);
            let c = m.modpow(&key.e, &key.n);
            (m, c)
        })
        .collect()
}

#[test]
fn injected_worker_panic_answers_every_request_and_recovers() {
    let key = keypair(64, 800);
    for kind in EngineKind::ALL {
        let (server, id) = server_on(kind, &key);
        // One armed panic: the next flush panics *outside* the
        // per-flush net, unwinding (and restarting) a whole worker.
        server.faults().inject_flush_panics(1);
        let wave1 = traffic(&key, 801, 8);
        let tickets: Vec<_> = wave1
            .iter()
            .map(|(_, c)| {
                server
                    .try_submit(id, BatchOp::DecryptCrt, c.clone())
                    .unwrap()
            })
            .collect();
        let mut panicked = 0usize;
        for (ticket, (m, _)) in tickets.into_iter().zip(&wave1) {
            // Never a wrong answer, never a lost response: each ticket
            // resolves with either the exact plaintext or the typed
            // panic error.
            match ticket.wait() {
                Ok(got) => assert_eq!(got, *m, "{}", kind.name()),
                Err(MmmError::WorkerPanicked) => panicked += 1,
                Err(other) => panic!("unexpected error {other:?} ({})", kind.name()),
            }
        }
        assert!(panicked >= 1, "the armed panic hit a shard in flight");
        assert_eq!(server.faults().panics_fired(), 1);
        let stats = server.stats();
        assert!(
            stats.worker_restarts >= 1,
            "panic escaped the serve loop and the supervisor restarted it ({})",
            kind.name()
        );
        // The pool survived the unwind: fresh traffic is answered
        // correctly by the recovered worker set.
        for (m, c) in traffic(&key, 802, 4) {
            let ticket = server.try_submit(id, BatchOp::DecryptCrt, c).unwrap();
            assert_eq!(ticket.wait(), Ok(m), "{}", kind.name());
        }
        server.shutdown();
    }
}

#[test]
fn flush_stalls_delay_but_never_corrupt() {
    let key = keypair(64, 810);
    for kind in EngineKind::ALL {
        let (server, id) = server_on(kind, &key);
        server
            .faults()
            .inject_flush_stalls(Duration::from_millis(40), 1);
        let (m, c) = traffic(&key, 811, 1).pop().unwrap();
        let t0 = Instant::now();
        let ticket = server.try_submit(id, BatchOp::DecryptCrt, c).unwrap();
        assert_eq!(ticket.wait(), Ok(m), "{}", kind.name());
        assert!(
            t0.elapsed() >= Duration::from_millis(40),
            "the stall was actually applied ({})",
            kind.name()
        );
        assert_eq!(server.faults().stalls_fired(), 1);
        // And the stall was one-shot: the next request is fast again
        // and equally correct.
        let (m, c) = traffic(&key, 812, 1).pop().unwrap();
        let ticket = server.try_submit(id, BatchOp::DecryptCrt, c).unwrap();
        assert_eq!(ticket.wait(), Ok(m), "{}", kind.name());
        server.shutdown();
    }
}

#[test]
fn queue_full_storm_surfaces_overloaded_then_clears() {
    let key = keypair(64, 820);
    for kind in EngineKind::ALL {
        let (server, id) = server_on(kind, &key);
        let storm = 5usize;
        server.faults().inject_queue_full(storm);
        let requests = traffic(&key, 821, storm + 1);
        for (_, c) in &requests[..storm] {
            assert_eq!(
                server
                    .try_submit(id, BatchOp::DecryptCrt, c.clone())
                    .unwrap_err(),
                MmmError::Overloaded { capacity: 1024 },
                "{}",
                kind.name()
            );
        }
        assert_eq!(server.faults().fulls_fired(), storm);
        // The storm passes; the very next submission is served.
        let (m, c) = requests.into_iter().last().unwrap();
        let ticket = server.try_submit(id, BatchOp::DecryptCrt, c).unwrap();
        assert_eq!(ticket.wait(), Ok(m), "{}", kind.name());
        let stats = server.stats();
        assert_eq!(stats.overloaded, storm as u64);
        assert_eq!(stats.submitted, 1);
        server.shutdown();
    }
}

#[test]
fn real_queue_saturation_backpressures_both_submit_paths() {
    // No injection here: a genuinely wedged worker (armed stall) and a
    // two-slot queue produce the real thing — `try_submit` refuses
    // with `Overloaded`, the blocking path gives up with
    // `DeadlineExceeded` after its budget — and every admitted request
    // is still answered correctly once the stall clears.
    let key = keypair(64, 830);
    let config = EngineConfig::default()
        .with_workers(1)
        .unwrap()
        .with_flush_deadline(Duration::from_micros(100))
        .with_queue_bound(2)
        .unwrap();
    let mut builder = Server::builder(config);
    let id = builder.add_key(key.clone()).unwrap();
    let server = builder.build().unwrap();
    server
        .faults()
        .inject_flush_stalls(Duration::from_millis(300), 1);
    let requests = traffic(&key, 831, 4);
    // First request reaches the worker and its flush stalls 300 ms.
    let t_first = server
        .try_submit(id, BatchOp::DecryptCrt, requests[0].1.clone())
        .unwrap();
    let stall_seen = Instant::now();
    while server.faults().stalls_fired() == 0 {
        assert!(
            stall_seen.elapsed() < Duration::from_secs(10),
            "worker never reached the stalled flush"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // The lone worker is asleep inside the flush: fill both queue
    // slots, then watch both submit paths push back.
    let t_q1 = server
        .try_submit(id, BatchOp::DecryptCrt, requests[1].1.clone())
        .unwrap();
    let t_q2 = server
        .try_submit(id, BatchOp::DecryptCrt, requests[2].1.clone())
        .unwrap();
    assert_eq!(
        server
            .try_submit(id, BatchOp::DecryptCrt, requests[3].1.clone())
            .unwrap_err(),
        MmmError::Overloaded { capacity: 2 }
    );
    assert_eq!(
        server
            .submit(
                id,
                BatchOp::DecryptCrt,
                requests[3].1.clone(),
                Duration::from_millis(20),
            )
            .unwrap_err(),
        MmmError::DeadlineExceeded
    );
    // Backpressure refused the overflow; it never lost the backlog.
    for (ticket, (m, _)) in [t_first, t_q1, t_q2].into_iter().zip(&requests) {
        assert_eq!(ticket.wait(), Ok(m.clone()));
    }
    let stats = server.stats();
    assert_eq!(stats.overloaded, 1);
    assert_eq!(stats.submit_timeouts, 1);
    assert_eq!(stats.submitted, 3);
    server.shutdown();
}

#[test]
fn shutdown_drains_pending_shards_and_answers_in_flight() {
    let key = keypair(64, 840);
    for kind in EngineKind::ALL {
        // A deadline far beyond the test's lifetime: only the shutdown
        // drain can explain these tickets resolving.
        let config = EngineConfig::default()
            .with_backend(kind)
            .with_workers(2)
            .unwrap()
            .with_flush_deadline(Duration::from_secs(600));
        let mut builder = Server::builder(config);
        let id = builder.add_key(key.clone()).unwrap();
        let server = builder.build().unwrap();
        let requests = traffic(&key, 841, 6);
        let tickets: Vec<_> = requests
            .iter()
            .map(|(_, c)| {
                server
                    .try_submit(id, BatchOp::DecryptCrt, c.clone())
                    .unwrap()
            })
            .collect();
        server.shutdown();
        for (ticket, (m, _)) in tickets.into_iter().zip(&requests) {
            assert_eq!(
                ticket.wait(),
                Ok(m.clone()),
                "drained at shutdown ({})",
                kind.name()
            );
        }
    }
}

#[test]
fn combined_storm_never_loses_or_corrupts_a_response() {
    // All three injections armed at once, both submit paths in use:
    // the accounting identity `attempts = refused + admitted` and
    // `admitted = responses` must survive, and every successful
    // response must carry the exact plaintext.
    let key = keypair(64, 850);
    for kind in EngineKind::ALL {
        let (server, id) = server_on(kind, &key);
        server.faults().inject_flush_panics(2);
        server
            .faults()
            .inject_flush_stalls(Duration::from_millis(5), 2);
        server.faults().inject_queue_full(3);
        let requests = traffic(&key, 851, 24);
        let mut refused = 0usize;
        let mut ok = 0usize;
        let mut panicked = 0usize;
        // Submit in waves, waiting out each wave before the next, so
        // the armed panics cannot all collapse into one mega-flush:
        // each wave forces at least one flush of its own.
        for (w, wave) in requests.chunks(6).enumerate() {
            let mut admitted = Vec::new();
            for (i, (m, c)) in wave.iter().enumerate() {
                let submitted = if (w + i) % 2 == 0 {
                    server.try_submit(id, BatchOp::DecryptCrt, c.clone())
                } else {
                    server.submit(id, BatchOp::DecryptCrt, c.clone(), Duration::from_secs(30))
                };
                match submitted {
                    Ok(ticket) => admitted.push((ticket, m)),
                    Err(MmmError::Overloaded { .. }) => refused += 1,
                    Err(other) => panic!("unexpected refusal {other:?} ({})", kind.name()),
                }
            }
            for (ticket, m) in admitted {
                match ticket.wait() {
                    Ok(got) => {
                        assert_eq!(got, *m, "never a wrong answer ({})", kind.name());
                        ok += 1;
                    }
                    Err(MmmError::WorkerPanicked) => panicked += 1,
                    Err(other) => panic!("unexpected error {other:?} ({})", kind.name()),
                }
            }
        }
        assert_eq!(refused, 3, "exactly the armed storm ({})", kind.name());
        assert_eq!(ok + panicked, 24 - refused, "no lost responses");
        assert_eq!(server.faults().panics_fired(), 2);
        assert!(ok >= 1, "the server made progress through the storm");
        server.shutdown();
    }
}

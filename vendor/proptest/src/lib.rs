//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`arbitrary::any`], [`collection::vec`], `Just`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream: failing cases are **not shrunk** — the
//! failing input is simply part of the panic context — and sampling is
//! deterministic per test name (no persisted failure seeds). Properties
//! accepted by this runner are a superset of those accepted by real
//! proptest, so swapping the real crate back in requires no source
//! changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic test RNG (SplitMix64).
pub mod test_runner {
    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The RNG strategies draw from: SplitMix64, seeded from the test
    /// name so distinct properties see decorrelated streams.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (e.g. the property name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Rejection sampling to stay unbiased.
            let zone = u64::MAX - u64::MAX % bound;
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

/// `any::<T>()` — uniform values over a whole type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "uniform over everything" strategy.
    pub trait Arbitrary {
        /// Draws one uniform value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<A> {
        _marker: PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Uniform strategy over all values of `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification: exact, `lo..hi` or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (plain `assert!`; no shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!`; no shrink).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!`; no shrink).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&v));
            let w = (3usize..=7).sample(&mut rng);
            assert!((3..=7).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("vecs");
        let s = prop::collection::vec(any::<u8>(), 2..5);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = prop::collection::vec(any::<bool>(), 6);
        assert_eq!(exact.sample(&mut rng).len(), 6);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("maps");
        let s = (1usize..5)
            .prop_flat_map(|n| (Just(n), 0u64..(n as u64 * 10)).prop_map(|(n, v)| (n, v)));
        for _ in 0..500 {
            let (n, v) = s.sample(&mut rng);
            assert!(v < n as u64 * 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_runs_and_binds(a in 0u64..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
            prop_assert_ne!(a, a + 1);
        }
    }
}

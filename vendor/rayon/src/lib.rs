//! Offline stand-in for the `rayon` crate.
//!
//! The registry is unreachable in this build environment, so this
//! vendored crate reimplements the small slice of rayon the workspace
//! uses — `par_iter()` / `par_chunks()` / `into_par_iter()` followed by
//! `map(...).collect()` — with real data parallelism on
//! [`std::thread::scope`]. Work is split into one contiguous span per
//! hardware thread and results are stitched back **in input order**,
//! matching rayon's ordered-collect semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Everything a caller needs, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParMap, ParallelSlice};
}

/// Number of worker threads to fan out across.
fn threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// An eager "parallel iterator": the items to process, in order.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, ready to execute on `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Attaches the per-item function.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel (no results).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        self.map(f).collect::<Vec<()>>();
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Executes the map across threads, preserving input order.
    pub fn collect<C: FromIterator<R>>(mut self) -> C {
        let n = self.items.len();
        let workers = threads().min(n.max(1));
        if workers <= 1 || n <= 1 {
            let f = &self.f;
            return self.items.drain(..).map(f).collect();
        }
        // Contiguous spans, remainder spread over the first few workers.
        let base = n / workers;
        let extra = n % workers;
        let mut spans: Vec<Vec<T>> = Vec::with_capacity(workers);
        let mut rest = self.items;
        for w in (0..workers).rev() {
            let take = base + usize::from(w < extra);
            spans.push(rest.split_off(rest.len() - take));
        }
        // `spans` is in reverse span order; threads return ordered outputs.
        let f = &self.f;
        let mut outputs: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .into_iter()
                .map(|span| scope.spawn(move || span.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        outputs.reverse();
        outputs.into_iter().flatten().collect()
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Consumes `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing parallel iteration over slices (and anything that derefs
/// to a slice, e.g. arrays and `Vec`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over non-overlapping chunks of length
    /// `chunk_size` (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_collect_matches_sequential() {
        let input: Vec<u64> = (0..1000).collect();
        let par: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        let seq: Vec<u64> = input.iter().map(|&x| x * x).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_chunks_cover_everything_in_order() {
        let input: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = input.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u32>(), input.iter().sum::<u32>());
        assert_eq!(sums[0], (0..10).sum::<u32>());
        assert_eq!(sums[10], (100..103).sum::<u32>());
    }

    #[test]
    fn into_par_iter_owned() {
        let v = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, [1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let input: Vec<usize> = (0..64).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let n = ids.lock().unwrap().len();
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1
        {
            assert!(n > 1, "expected fan-out, saw {n} thread(s)");
        }
    }
}

//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build environment has no registry access, so this workspace
//! vendors the *exact* subset of `rand` it consumes: [`RngCore`],
//! [`Rng::gen`], [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream's ChaCha12, which is fine because
//! every consumer treats the stream as opaque randomness (property
//! tests and uniform sampling, never golden values).
//!
//! Not cryptographically secure; this workspace only uses it for test
//! vectors, benchmarks and simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A distribution that can sample values of type `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over all values of the type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniformly random value in `[low, high)`.
    fn gen_range(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range");
        // Rejection sampling on the top of the range to stay unbiased.
        let span = high - low;
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return low + v % span;
            }
        }
    }

    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Pre-packaged generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman/Vigna),
    /// seeded via SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(2);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b, "stream must advance");
    }

    #[test]
    fn bool_distribution_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "trues={trues}");
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API this workspace's benches
//! use — groups, `bench_with_input`, `Throughput::Elements`,
//! `criterion_group!`/`criterion_main!` — over a simple wall-clock
//! harness: per benchmark it warms up for `warm_up_time`, then runs
//! timed batches until `measurement_time` elapses (at least
//! `sample_size` batches), reporting the mean time per iteration and,
//! when a throughput is configured, elements per second.
//!
//! No statistics, plots or comparisons — numbers print to stdout in a
//! stable `name … time: … thrpt: …` format that downstream tooling
//! (e.g. `compare_batch`) can parse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering, displayed as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `name/param`.
    pub fn new<P: Display>(name: impl Into<String>, param: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Creates an id from just a function name.
    pub fn from_name(name: impl Into<String>) -> Self {
        BenchmarkId { id: name.into() }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
    min_samples: u64,
}

impl Bencher {
    /// Times `routine`, storing total elapsed time and iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size so one batch is ~1/50 of the measurement
        // budget, from the warm-up estimate of per-iteration cost.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((self.measurement_time.as_secs_f64() / 50.0 / per_iter.max(1e-9)) as u64)
            .clamp(1, 1_000_000);
        let start = Instant::now();
        let mut samples: u64 = 0;
        while start.elapsed() < self.measurement_time || samples < self.min_samples {
            for _ in 0..batch {
                black_box(routine());
            }
            self.iters += batch;
            samples += 1;
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of timed batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            min_samples: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId::from_name(id);
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            min_samples: self.sample_size,
        };
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = if b.iters == 0 {
            f64::NAN
        } else {
            b.elapsed.as_secs_f64() / b.iters as f64
        };
        let mut line = format!("{}/{}  time: [{}]", self.name, id, format_time(per_iter));
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let rate = count as f64 / per_iter;
            line.push_str(&format!("  thrpt: [{rate:.4e} {unit}]"));
        }
        println!("{line}");
    }

    /// Ends the group (prints nothing; present for API compatibility).
    pub fn finish(self) {}
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.4} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.4} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.4} ms", secs * 1e3)
    } else {
        format!("{secs:.4} s")
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts (and ignores) command-line configuration; present for
    /// API compatibility with criterion's generated harness code.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("bench", f);
        self
    }
}

/// Declares a group-runner function from benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            min_samples: 1,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        let id = BenchmarkId::new("mul", 1024);
        assert_eq!(id.id, "mul/1024");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(2));
        group.throughput(Throughput::Elements(4));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, &_| {
            ran = true;
            b.iter(|| black_box(2 + 2));
        });
        group.finish();
        assert!(ran);
    }
}
